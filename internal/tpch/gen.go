// Package tpch implements a scaled-down TPC-H-like substrate: a
// deterministic generator for the seven tables the paper's experiments
// touch and hand-built physical plans for the five queries of
// Figure 4 / Table II (Q1, Q4, Q6, Q7, Q14).
//
// The substitution (documented in DESIGN.md): the paper runs TPC-H
// SF10 on PostgreSQL; this package generates structurally equivalent
// integer-only tables at configurable scale, with the predicate
// columns and per-query LINEITEM selectivities the paper reports
// (98%, 65%, 2%, 30%, 1%). Dates are day numbers from 1992-01-01,
// money is cents.
package tpch

import (
	"fmt"
	"math/rand"
	"sort"

	"smoothscan/internal/btree"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// LINEITEM column indices.
const (
	LOrderkey = iota
	LPartkey
	LSuppkey
	LLinenumber
	LQuantity
	LExtendedprice
	LDiscount
	LTax
	LReturnflag
	LLinestatus
	LShipdate
	LCommitdate
	LReceiptdate
	lineitemCols
)

// ORDERS column indices.
const (
	OOrderkey = iota
	OCustkey
	OOrderstatus
	OTotalprice
	OOrderdate
	OOrderpriority
	ordersCols
)

// CUSTOMER column indices.
const (
	CCustkey = iota
	CNationkey
	CMktsegment
	customerCols
)

// SUPPLIER column indices.
const (
	SSuppkey = iota
	SNationkey
	supplierCols
)

// PART column indices.
const (
	PPartkey = iota
	PType
	PSize
	partCols
)

// NATION column indices.
const (
	NNationkey = iota
	NRegionkey
	nationCols
)

// Date domain: days since 1992-01-01, seven years.
const (
	MinDate = 0
	MaxDate = 7*365 + 1
)

// Table is a loaded TPC-H table with a primary-key index on column 0.
type Table struct {
	File *heap.File
	PK   *btree.Tree
}

// DB is a generated TPC-H-like database.
type DB struct {
	Dev      *disk.Device
	Lineitem *Table
	Orders   *Table
	Customer *Table
	Supplier *Table
	Part     *Table
	Nation   *Table
	Region   *Table

	// ShipIdx is the secondary index on LINEITEM.l_shipdate — the
	// index the tuning advisor proposes and all five queries go
	// through.
	ShipIdx *btree.Tree

	// shipdates is the sorted multiset of generated ship dates, used
	// to translate a target selectivity into a date threshold.
	shipdates []int64

	// NumOrders is the scale knob (TPC-H SF1 ≈ 1.5M orders; this
	// generator defaults to thousands).
	NumOrders int64
}

// Config parameterises generation.
type Config struct {
	// NumOrders scales the database; LINEITEM gets 1–7 lines per
	// order (avg 4), as in TPC-H.
	NumOrders int64
	// Customers, Suppliers, Parts default to NumOrders/10,
	// NumOrders/100+10 and NumOrders/5+10.
	Customers int64
	Suppliers int64
	Parts     int64
	// Seed makes generation deterministic.
	Seed int64
}

func (c *Config) defaults() error {
	if c.NumOrders <= 0 {
		return fmt.Errorf("tpch: NumOrders must be positive, got %d", c.NumOrders)
	}
	if c.Customers == 0 {
		c.Customers = c.NumOrders/10 + 10
	}
	if c.Suppliers == 0 {
		c.Suppliers = c.NumOrders/100 + 10
	}
	if c.Parts == 0 {
		c.Parts = c.NumOrders/5 + 10
	}
	return nil
}

func lineitemSchema() *tuple.Schema {
	names := []string{
		"l_orderkey", "l_partkey", "l_suppkey", "l_linenumber", "l_quantity",
		"l_extendedprice", "l_discount", "l_tax", "l_returnflag", "l_linestatus",
		"l_shipdate", "l_commitdate", "l_receiptdate",
	}
	cols := make([]tuple.Column, len(names))
	for i, n := range names {
		cols[i] = tuple.Column{Name: n, Type: tuple.Int64}
	}
	return tuple.MustSchema(cols...)
}

func schemaOf(names ...string) *tuple.Schema {
	cols := make([]tuple.Column, len(names))
	for i, n := range names {
		cols[i] = tuple.Column{Name: n, Type: tuple.Int64}
	}
	return tuple.MustSchema(cols...)
}

// Gen generates the database on the device. Bulk-load I/O is excluded
// from device statistics (they are reset at the end).
func Gen(dev *disk.Device, cfg Config) (*DB, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := &DB{Dev: dev, NumOrders: cfg.NumOrders}

	loadTable := func(schema *tuple.Schema, n int64, fill func(i int64, row tuple.Row)) (*Table, error) {
		file, err := heap.Create(dev, schema)
		if err != nil {
			return nil, err
		}
		b := file.NewBuilder()
		row := tuple.NewRow(schema)
		for i := int64(0); i < n; i++ {
			fill(i, row)
			if err := b.Append(row); err != nil {
				return nil, err
			}
		}
		if err := b.Flush(); err != nil {
			return nil, err
		}
		pk, err := btree.BuildOnColumn(dev, file, 0)
		if err != nil {
			return nil, err
		}
		return &Table{File: file, PK: pk}, nil
	}

	const numNations, numRegions = 25, 5
	var err error
	if db.Region, err = loadTable(schemaOf("r_regionkey", "r_name"), numRegions, func(i int64, r tuple.Row) {
		r.SetInt(0, i)
		r.SetInt(1, i)
	}); err != nil {
		return nil, err
	}
	if db.Nation, err = loadTable(schemaOf("n_nationkey", "n_regionkey"), numNations, func(i int64, r tuple.Row) {
		r.SetInt(NNationkey, i)
		r.SetInt(NRegionkey, i%numRegions)
	}); err != nil {
		return nil, err
	}
	if db.Customer, err = loadTable(schemaOf("c_custkey", "c_nationkey", "c_mktsegment"), cfg.Customers, func(i int64, r tuple.Row) {
		r.SetInt(CCustkey, i)
		r.SetInt(CNationkey, rng.Int63n(numNations))
		r.SetInt(CMktsegment, rng.Int63n(5))
	}); err != nil {
		return nil, err
	}
	if db.Supplier, err = loadTable(schemaOf("s_suppkey", "s_nationkey"), cfg.Suppliers, func(i int64, r tuple.Row) {
		r.SetInt(SSuppkey, i)
		r.SetInt(SNationkey, rng.Int63n(numNations))
	}); err != nil {
		return nil, err
	}
	if db.Part, err = loadTable(schemaOf("p_partkey", "p_type", "p_size"), cfg.Parts, func(i int64, r tuple.Row) {
		r.SetInt(PPartkey, i)
		r.SetInt(PType, rng.Int63n(150)) // 150 part types; PROMO ≈ type < 30
		r.SetInt(PSize, 1+rng.Int63n(50))
	}); err != nil {
		return nil, err
	}

	// Orders and lineitem are generated together so line dates derive
	// from order dates, as in dbgen.
	orderDates := make([]int64, cfg.NumOrders)
	if db.Orders, err = loadTable(
		schemaOf("o_orderkey", "o_custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"),
		cfg.NumOrders,
		func(i int64, r tuple.Row) {
			date := MinDate + rng.Int63n(MaxDate-151)
			orderDates[i] = date
			r.SetInt(OOrderkey, i)
			r.SetInt(OCustkey, rng.Int63n(cfg.Customers))
			r.SetInt(OOrderstatus, rng.Int63n(3))
			r.SetInt(OTotalprice, 100_00+rng.Int63n(400_000_00))
			r.SetInt(OOrderdate, date)
			r.SetInt(OOrderpriority, rng.Int63n(5))
		}); err != nil {
		return nil, err
	}

	liFile, err := heap.Create(dev, lineitemSchema())
	if err != nil {
		return nil, err
	}
	lb := liFile.NewBuilder()
	row := tuple.NewRow(liFile.Schema())
	for o := int64(0); o < cfg.NumOrders; o++ {
		lines := 1 + rng.Int63n(7)
		for ln := int64(0); ln < lines; ln++ {
			ship := orderDates[o] + 1 + rng.Int63n(121)
			commit := orderDates[o] + 30 + rng.Int63n(61)
			receipt := ship + 1 + rng.Int63n(30)
			row.SetInt(LOrderkey, o)
			row.SetInt(LPartkey, rng.Int63n(cfg.Parts))
			row.SetInt(LSuppkey, rng.Int63n(cfg.Suppliers))
			row.SetInt(LLinenumber, ln)
			row.SetInt(LQuantity, 1+rng.Int63n(50))
			row.SetInt(LExtendedprice, 100+rng.Int63n(95_000_00))
			row.SetInt(LDiscount, rng.Int63n(11))  // 0–10 percent
			row.SetInt(LTax, rng.Int63n(9))        // 0–8 percent
			row.SetInt(LReturnflag, rng.Int63n(3)) // A/N/R
			row.SetInt(LLinestatus, rng.Int63n(2)) // O/F
			row.SetInt(LShipdate, ship)
			row.SetInt(LCommitdate, commit)
			row.SetInt(LReceiptdate, receipt)
			if err := lb.Append(row); err != nil {
				return nil, err
			}
			db.shipdates = append(db.shipdates, ship)
		}
	}
	if err := lb.Flush(); err != nil {
		return nil, err
	}
	liPK, err := btree.BuildOnColumn(dev, liFile, LOrderkey)
	if err != nil {
		return nil, err
	}
	db.Lineitem = &Table{File: liFile, PK: liPK}
	if db.ShipIdx, err = btree.BuildOnColumn(dev, liFile, LShipdate); err != nil {
		return nil, err
	}
	sort.Slice(db.shipdates, func(i, j int) bool { return db.shipdates[i] < db.shipdates[j] })
	dev.ResetStats()
	return db, nil
}

// ShipdatePred returns a predicate on l_shipdate whose true
// selectivity over the generated LINEITEM is as close as possible to
// sel: l_shipdate < threshold.
func (db *DB) ShipdatePred(sel float64) tuple.RangePred {
	if sel <= 0 {
		return tuple.RangePred{Col: LShipdate, Lo: MinDate, Hi: MinDate}
	}
	if sel >= 1 {
		return tuple.RangePred{Col: LShipdate, Lo: MinDate, Hi: MaxDate + 200}
	}
	idx := int(sel * float64(len(db.shipdates)))
	if idx >= len(db.shipdates) {
		idx = len(db.shipdates) - 1
	}
	return tuple.RangePred{Col: LShipdate, Lo: MinDate, Hi: db.shipdates[idx]}
}

// TrueSelectivity returns the exact selectivity of a shipdate
// predicate over the generated data.
func (db *DB) TrueSelectivity(pred tuple.RangePred) float64 {
	lo := sort.Search(len(db.shipdates), func(i int) bool { return db.shipdates[i] >= pred.Lo })
	hi := sort.Search(len(db.shipdates), func(i int) bool { return db.shipdates[i] >= pred.Hi })
	return float64(hi-lo) / float64(len(db.shipdates))
}
