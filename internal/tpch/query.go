package tpch

import (
	"fmt"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/exec"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// Path selects the access path used for the LINEITEM table — the only
// plan difference between the paper's "pSQL" and "pSQL with Smooth
// Scan" runs (Section VI-B: "the access path operator choice is the
// only change compared to the original plan").
type Path int

// LINEITEM access paths.
const (
	PathFull Path = iota
	PathIndex
	PathSort
	PathSmooth
	PathSwitch
)

func (p Path) String() string {
	switch p {
	case PathFull:
		return "full-scan"
	case PathIndex:
		return "index-scan"
	case PathSort:
		return "sort-scan"
	case PathSmooth:
		return "smooth-scan"
	case PathSwitch:
		return "switch-scan"
	default:
		return fmt.Sprintf("Path(%d)", int(p))
	}
}

// ScanSpec bundles the path with its knobs.
type ScanSpec struct {
	Path Path
	// Smooth configures PathSmooth; the zero value is the paper's
	// favoured Elastic + Eager configuration.
	Smooth core.Config
	// SwitchThreshold configures PathSwitch.
	SwitchThreshold int64
	// Ordered requests index-key order from order-preserving paths.
	Ordered bool
}

// DefaultSmooth is the paper's favoured configuration: Elastic policy,
// Eager trigger.
func DefaultSmooth() core.Config {
	return core.Config{Policy: core.Elastic, Trigger: core.Eager}
}

// planPath maps the TPC-H path enum onto the shared plan layer's.
func (p Path) planPath() (plan.Path, error) {
	switch p {
	case PathFull:
		return plan.PathFull, nil
	case PathIndex:
		return plan.PathIndex, nil
	case PathSort:
		return plan.PathSort, nil
	case PathSmooth:
		return plan.PathSmooth, nil
	case PathSwitch:
		return plan.PathSwitch, nil
	default:
		return 0, fmt.Errorf("tpch: unknown path %d", int(p))
	}
}

// PrepareLineitem validates a LINEITEM scan spec once and returns the
// reusable template: the plan layer's compile-once/bind-many surface
// (plan.ScanTemplate). Callers replaying the same spec over many
// predicates — the Figure 4 runs, the selectivity sweeps — bind each
// predicate against the validated template instead of re-validating
// per query; the bound operator trees are identical to fresh builds.
func (db *DB) PrepareLineitem(spec ScanSpec) (*plan.ScanTemplate, error) {
	pp, err := spec.Path.planPath()
	if err != nil {
		return nil, err
	}
	cfg := spec.Smooth
	cfg.Ordered = spec.Ordered
	return plan.NewScanTemplate(plan.ScanSpec{
		File:            db.Lineitem.File,
		Tree:            db.ShipIdx,
		Path:            pp,
		Smooth:          cfg,
		Ordered:         spec.Ordered,
		SwitchThreshold: spec.SwitchThreshold,
	})
}

// ScanLineitem builds the LINEITEM access operator for a shipdate
// range predicate through the shared plan-construction layer
// (internal/plan) — the same constructor behind the public Query
// builder — so the TPC-H plans differ from user queries only in their
// declarative spec, exactly as the paper frames it ("the access path
// operator choice is the only change compared to the original plan").
// It is PrepareLineitem + one bind.
func (db *DB) ScanLineitem(pool *bufferpool.Pool, pred tuple.RangePred, spec ScanSpec) (exec.Operator, error) {
	if pred.Col != LShipdate {
		return nil, fmt.Errorf("tpch: lineitem scans are driven by the l_shipdate index, got predicate on column %d", pred.Col)
	}
	tm, err := db.PrepareLineitem(spec)
	if err != nil {
		return nil, err
	}
	built, err := tm.BindOn(pool, pred)
	if err != nil {
		return nil, err
	}
	return built.Op, nil
}

// QueryResult summarises one query execution.
type QueryResult struct {
	// Rows is the number of rows the root operator produced.
	Rows int64
}

// run drains a plan.
func run(plan exec.Operator) (QueryResult, error) {
	n, err := exec.Count(plan)
	return QueryResult{Rows: n}, err
}

// Q1 is the pricing-summary query: a ~98%-selectivity scan of
// LINEITEM aggregated by (returnflag, linestatus). The paper's plain
// PostgreSQL picks Sort Scan here (the optimal choice); Smooth Scan
// must add only marginal overhead.
func (db *DB) Q1(pool *bufferpool.Pool, spec ScanSpec) (QueryResult, error) {
	pred := db.ShipdatePred(0.98)
	scan, err := db.ScanLineitem(pool, pred, spec)
	if err != nil {
		return QueryResult{}, err
	}
	// group key = returnflag*2 + linestatus (6 groups).
	keyed := exec.NewProject(scan, tuple.Ints(4), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(
			r.Int(LReturnflag)*2+r.Int(LLinestatus),
			r.Int(LQuantity),
			r.Int(LExtendedprice),
			r.Int(LDiscount),
		)
	})
	agg := exec.NewHashAgg(keyed, db.Dev, 0, []exec.AggSpec{
		{Name: "sum_qty", Col: 1, Kind: exec.AggSum},
		{Name: "sum_base_price", Col: 2, Kind: exec.AggSum},
		{Name: "count_order", Col: 0, Kind: exec.AggCount},
	})
	return run(agg)
}

// Q4 is the order-priority query: LINEITEM at ~65% selectivity as the
// outer of an index-nested-loop join with ORDERS (primary-key
// look-up), with the l_commitdate < l_receiptdate residual. Plain
// PostgreSQL correctly picks a full scan for the outer.
func (db *DB) Q4(pool *bufferpool.Pool, spec ScanSpec) (QueryResult, error) {
	pred := db.ShipdatePred(0.65)
	scan, err := db.ScanLineitem(pool, pred, spec)
	if err != nil {
		return QueryResult{}, err
	}
	late := exec.NewFilter(scan, db.Dev, func(r tuple.Row) bool {
		return r.Int(LCommitdate) < r.Int(LReceiptdate)
	})
	join := exec.NewIndexNestedLoopJoin(late, exec.NewIndexLookup(db.Orders.File, pool, db.Orders.PK), db.Dev, LOrderkey)
	// o_orderdate lands after the 13 lineitem columns.
	ordCol := lineitemCols + OOrderdate
	priCol := lineitemCols + OOrderpriority
	quarter := exec.NewFilter(join, db.Dev, func(r tuple.Row) bool {
		d := r.Int(ordCol)
		return d >= 820 && d < 912 // one quarter
	})
	keyed := exec.NewProject(quarter, tuple.Ints(1), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(r.Int(priCol))
	})
	agg := exec.NewHashAgg(keyed, db.Dev, 0, []exec.AggSpec{
		{Name: "order_count", Col: 0, Kind: exec.AggCount},
	})
	return run(agg)
}

// Q6 is the forecasting-revenue query: a ~2%-selectivity predicate on
// LINEITEM with a global aggregate. This is the query where plain
// PostgreSQL's index-scan choice costs it a factor of 10 in the paper.
func (db *DB) Q6(pool *bufferpool.Pool, spec ScanSpec) (QueryResult, error) {
	pred := db.ShipdatePred(0.02)
	scan, err := db.ScanLineitem(pool, pred, spec)
	if err != nil {
		return QueryResult{}, err
	}
	disc := exec.NewFilter(scan, db.Dev, func(r tuple.Row) bool {
		return r.Int(LDiscount) >= 2 && r.Int(LDiscount) <= 8 && r.Int(LQuantity) < 40
	})
	rev := exec.NewProject(disc, tuple.Ints(1), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(r.Int(LExtendedprice) * r.Int(LDiscount) / 100)
	})
	agg := exec.NewHashAgg(rev, db.Dev, -1, []exec.AggSpec{
		{Name: "revenue", Col: 0, Kind: exec.AggSum},
	})
	return run(agg)
}

// Q7 is the volume-shipping query: a six-table join driven by a ~30%
// scan of LINEITEM (joined to SUPPLIER, ORDERS, CUSTOMER and NATION
// twice). An index choice over LINEITEM costs plain PostgreSQL a
// factor of 7 in the paper.
func (db *DB) Q7(pool *bufferpool.Pool, spec ScanSpec) (QueryResult, error) {
	pred := db.ShipdatePred(0.30)
	scan, err := db.ScanLineitem(pool, pred, spec)
	if err != nil {
		return QueryResult{}, err
	}
	// lineitem ⋈ supplier (s_suppkey).
	jSupp := exec.NewIndexNestedLoopJoin(scan, exec.NewIndexLookup(db.Supplier.File, pool, db.Supplier.PK), db.Dev, LSuppkey)
	sNation := lineitemCols + SNationkey
	// ⋈ orders (l_orderkey).
	jOrd := exec.NewIndexNestedLoopJoin(jSupp, exec.NewIndexLookup(db.Orders.File, pool, db.Orders.PK), db.Dev, LOrderkey)
	oCust := lineitemCols + supplierCols + OCustkey
	// ⋈ customer (o_custkey).
	jCust := exec.NewIndexNestedLoopJoin(jOrd, exec.NewIndexLookup(db.Customer.File, pool, db.Customer.PK), db.Dev, oCust)
	cNation := lineitemCols + supplierCols + ordersCols + CNationkey
	// nation pair filter: (supp ∈ 1, cust ∈ 2) or (supp ∈ 2, cust ∈ 1).
	pair := exec.NewFilter(jCust, db.Dev, func(r tuple.Row) bool {
		a, b := r.Int(sNation), r.Int(cNation)
		return (a == 1 && b == 2) || (a == 2 && b == 1)
	})
	year := exec.NewProject(pair, tuple.Ints(2), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(r.Int(LShipdate)/365, r.Int(LExtendedprice)*(100-r.Int(LDiscount))/100)
	})
	agg := exec.NewHashAgg(year, db.Dev, 0, []exec.AggSpec{
		{Name: "revenue", Col: 1, Kind: exec.AggSum},
	})
	return run(agg)
}

// Q14 is the promotion-effect query: LINEITEM at ~1% selectivity
// joined to PART by primary-key look-up. Smooth Scan beats the index
// scan by a factor of 8 in the paper.
func (db *DB) Q14(pool *bufferpool.Pool, spec ScanSpec) (QueryResult, error) {
	pred := db.MonthPred(72) // one month, ≈1% of seven years
	scan, err := db.ScanLineitem(pool, pred, spec)
	if err != nil {
		return QueryResult{}, err
	}
	join := exec.NewIndexNestedLoopJoin(scan, exec.NewIndexLookup(db.Part.File, pool, db.Part.PK), db.Dev, LPartkey)
	pType := lineitemCols + PType
	rev := exec.NewProject(join, tuple.Ints(2), func(r tuple.Row) tuple.Row {
		promo := int64(0)
		if r.Int(pType) < 30 {
			promo = r.Int(LExtendedprice) * (100 - r.Int(LDiscount)) / 100
		}
		return tuple.IntsRow(promo, r.Int(LExtendedprice)*(100-r.Int(LDiscount))/100)
	})
	agg := exec.NewHashAgg(rev, db.Dev, -1, []exec.AggSpec{
		{Name: "promo_revenue", Col: 0, Kind: exec.AggSum},
		{Name: "total_revenue", Col: 1, Kind: exec.AggSum},
	})
	return run(agg)
}

// MonthPred returns a one-month shipdate range starting at the given
// month index (0-based from 1992-01).
func (db *DB) MonthPred(month int64) tuple.RangePred {
	lo := month * 30
	return tuple.RangePred{Col: LShipdate, Lo: lo, Hi: lo + 30}
}

// PaperPlans returns the access path plain PostgreSQL chose for each
// query in the paper's Figure 4 runs.
func PaperPlans() map[string]Path {
	return map[string]Path{
		"Q1":  PathSort,  // optimal at 98%
		"Q4":  PathFull,  // optimal at 65%
		"Q6":  PathIndex, // suboptimal: costs 10× in the paper
		"Q7":  PathIndex, // suboptimal: costs 7×
		"Q14": PathIndex, // suboptimal: costs 8×
	}
}

// Queries returns the five benchmark queries keyed by name, with their
// nominal LINEITEM selectivities.
func (db *DB) Queries() []QuerySpec {
	return []QuerySpec{
		{Name: "Q1", Selectivity: 0.98, Run: db.Q1},
		{Name: "Q4", Selectivity: 0.65, Run: db.Q4},
		{Name: "Q6", Selectivity: 0.02, Run: db.Q6},
		{Name: "Q7", Selectivity: 0.30, Run: db.Q7},
		{Name: "Q14", Selectivity: 0.01, Run: db.Q14},
	}
}

// QuerySpec names one runnable query.
type QuerySpec struct {
	Name        string
	Selectivity float64
	Run         func(*bufferpool.Pool, ScanSpec) (QueryResult, error)
}
