package tpch

import (
	"smoothscan/internal/bufferpool"
	"smoothscan/internal/exec"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// OrderDatePred returns a predicate on ORDERS.o_orderdate whose
// selectivity over the generated (uniform) order dates is sel:
// o_orderdate < threshold.
func (db *DB) OrderDatePred(sel float64) tuple.RangePred {
	span := int64(MaxDate - 151) // generator's o_orderdate domain
	if sel <= 0 {
		return tuple.RangePred{Col: OOrderdate, Lo: MinDate, Hi: MinDate}
	}
	if sel >= 1 {
		return tuple.RangePred{Col: OOrderdate, Lo: MinDate, Hi: MaxDate + 200}
	}
	return tuple.RangePred{Col: OOrderdate, Lo: MinDate, Hi: MinDate + int64(sel*float64(span))}
}

// ScanOrders builds a full-scan access over ORDERS with the predicate
// pushed into the page decode, through the shared plan layer.
func (db *DB) ScanOrders(pool *bufferpool.Pool, pred tuple.RangePred) (exec.Operator, error) {
	built, err := plan.Build(plan.ScanSpec{
		File: db.Orders.File,
		Pool: pool,
		Pred: pred,
		Path: plan.PathFull,
	})
	if err != nil {
		return nil, err
	}
	return built.Op, nil
}

// Q3 is the shipping-priority query (TPC-H Q3 restricted to the two
// big tables): LINEITEM under a shipdate predicate joined to ORDERS
// under an orderdate predicate on l_orderkey = o_orderkey, revenue
// aggregated per o_orderpriority. Unlike the Figure 4 queries' INLJ
// plans, Q3 runs the batched hash join: ORDERS (the smaller, filtered
// input) builds, the LINEITEM access path — the Smooth Scan morphing
// target — probes. lineSel and orderSel set each input's predicate
// selectivity; spec picks the LINEITEM access path, as everywhere
// else in this package.
func (db *DB) Q3(pool *bufferpool.Pool, spec ScanSpec, lineSel, orderSel float64) (QueryResult, exec.JoinStats, error) {
	scan, err := db.ScanLineitem(pool, db.ShipdatePred(lineSel), spec)
	if err != nil {
		return QueryResult{}, exec.JoinStats{}, err
	}
	orders, err := db.ScanOrders(pool, db.OrderDatePred(orderSel))
	if err != nil {
		return QueryResult{}, exec.JoinStats{}, err
	}
	join, err := plan.BuildJoin(plan.JoinSpec{
		Left:     scan,
		Right:    orders,
		LeftCol:  LOrderkey,
		RightCol: OOrderkey,
		Algo:     plan.JoinHash,
		Dev:      db.Dev,
	})
	if err != nil {
		return QueryResult{}, exec.JoinStats{}, err
	}
	priCol := lineitemCols + OOrderpriority
	keyed := exec.NewProject(join, tuple.Ints(2), func(r tuple.Row) tuple.Row {
		return tuple.IntsRow(
			r.Int(priCol),
			r.Int(LExtendedprice)*(100-r.Int(LDiscount))/100,
		)
	})
	agg := exec.NewHashAgg(keyed, db.Dev, 0, []exec.AggSpec{
		{Name: "revenue", Col: 1, Kind: exec.AggSum},
		{Name: "order_count", Col: 0, Kind: exec.AggCount},
	})
	res, err := run(agg)
	return res, join.(exec.JoinStatser).JoinStats(), err
}
