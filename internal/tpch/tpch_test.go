package tpch

import (
	"math"
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func genDB(t testing.TB, orders int64) *DB {
	t.Helper()
	dev := disk.NewDevice(disk.HDD)
	db, err := Gen(dev, Config{NumOrders: orders, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// newPool sizes the buffer pool at ~10% of LINEITEM, as the paper's
// experiments keep the buffer cache far smaller than the data.
func newPool(db *DB) *bufferpool.Pool {
	return bufferpool.New(db.Dev, int(db.Lineitem.File.NumPages()/10)+32)
}

func TestGenValidation(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	if _, err := Gen(dev, Config{NumOrders: 0}); err == nil {
		t.Error("zero orders accepted")
	}
}

func TestGenShape(t *testing.T) {
	db := genDB(t, 2000)
	li := db.Lineitem.File
	// Avg 4 lines per order.
	if li.NumTuples() < 4000 || li.NumTuples() > 12000 {
		t.Errorf("lineitem rows = %d for 2000 orders", li.NumTuples())
	}
	if db.Orders.File.NumTuples() != 2000 {
		t.Errorf("orders rows = %d", db.Orders.File.NumTuples())
	}
	if db.Nation.File.NumTuples() != 25 || db.Region.File.NumTuples() != 5 {
		t.Errorf("nation/region sizes wrong")
	}
	if db.ShipIdx.NumKeys() != li.NumTuples() {
		t.Errorf("ship index keys = %d, want %d", db.ShipIdx.NumKeys(), li.NumTuples())
	}
	if db.Dev.Stats().PagesRead != 0 {
		t.Error("device stats not reset after generation")
	}
}

func TestGenDeterministic(t *testing.T) {
	a := genDB(t, 500)
	b := genDB(t, 500)
	if a.Lineitem.File.NumTuples() != b.Lineitem.File.NumTuples() {
		t.Fatal("same-seed generation differs in size")
	}
	pa, pb := newPool(a), newPool(b)
	for _, i := range []int64{0, 100, a.Lineitem.File.NumTuples() - 1} {
		ra, err := a.Lineitem.File.RowAt(pa, a.Lineitem.File.TIDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.Lineitem.File.RowAt(pb, b.Lineitem.File.TIDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Equal(rb) {
			t.Fatalf("lineitem row %d differs across same-seed runs", i)
		}
	}
}

func TestShipdatePredHitsTargetSelectivity(t *testing.T) {
	db := genDB(t, 3000)
	for _, sel := range []float64{0.01, 0.02, 0.30, 0.65, 0.98} {
		pred := db.ShipdatePred(sel)
		got := db.TrueSelectivity(pred)
		if math.Abs(got-sel) > 0.03 {
			t.Errorf("sel %v: pred %v has true selectivity %v", sel, pred, got)
		}
	}
	if p := db.ShipdatePred(0); p.Lo != p.Hi {
		t.Errorf("sel 0: %v", p)
	}
	if got := db.TrueSelectivity(db.ShipdatePred(1)); got != 1 {
		t.Errorf("sel 1: true = %v", got)
	}
}

func TestReferentialIntegrity(t *testing.T) {
	db := genDB(t, 500)
	pool := newPool(db)
	row := tuple.NewRow(db.Lineitem.File.Schema())
	for p := int64(0); p < db.Lineitem.File.NumPages(); p++ {
		page, err := db.Lineitem.File.GetPage(pool, p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < heap.PageTupleCount(page); s++ {
			row = db.Lineitem.File.DecodeRow(page, s, row)
			if k := row.Int(LOrderkey); k < 0 || k >= db.Orders.File.NumTuples() {
				t.Fatalf("dangling l_orderkey %d", k)
			}
			if k := row.Int(LPartkey); k < 0 || k >= db.Part.File.NumTuples() {
				t.Fatalf("dangling l_partkey %d", k)
			}
			if k := row.Int(LSuppkey); k < 0 || k >= db.Supplier.File.NumTuples() {
				t.Fatalf("dangling l_suppkey %d", k)
			}
			ship, commit, receipt := row.Int(LShipdate), row.Int(LCommitdate), row.Int(LReceiptdate)
			if receipt <= ship {
				t.Fatalf("receipt %d <= ship %d", receipt, ship)
			}
			if commit < MinDate || ship < MinDate {
				t.Fatal("dates below domain")
			}
		}
	}
}

// Every query must return identical results under every LINEITEM
// access path — the access path is an implementation detail.
func TestQueriesPathIndependent(t *testing.T) {
	db := genDB(t, 1500)
	specs := []ScanSpec{
		{Path: PathFull},
		{Path: PathIndex},
		{Path: PathSort},
		{Path: PathSmooth, Smooth: DefaultSmooth()},
		{Path: PathSmooth, Smooth: core.Config{Policy: core.Greedy, Trigger: core.Eager}},
		{Path: PathSwitch, SwitchThreshold: 100},
	}
	for _, q := range db.Queries() {
		var want QueryResult
		for i, spec := range specs {
			pool := newPool(db)
			got, err := q.Run(pool, spec)
			if err != nil {
				t.Fatalf("%s under %v: %v", q.Name, spec.Path, err)
			}
			if i == 0 {
				want = got
				continue
			}
			if got != want {
				t.Errorf("%s under %v: result %+v, want %+v", q.Name, spec.Path, got, want)
			}
		}
	}
}

func TestScanLineitemRejectsWrongColumn(t *testing.T) {
	db := genDB(t, 200)
	pool := newPool(db)
	if _, err := db.ScanLineitem(pool, tuple.RangePred{Col: LQuantity, Lo: 0, Hi: 10}, ScanSpec{Path: PathFull}); err == nil {
		t.Error("predicate on non-indexed column accepted")
	}
	if _, err := db.ScanLineitem(pool, db.ShipdatePred(0.5), ScanSpec{Path: Path(99)}); err == nil {
		t.Error("unknown path accepted")
	}
}

// The Figure 4 headline: for the misestimated queries (Q6, Q7, Q14)
// Smooth Scan must beat the plain-PostgreSQL index-scan plan by a wide
// margin; for the well-estimated ones (Q1, Q4) it must be close to the
// optimal plan.
func TestFig4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	db := genDB(t, 8000)
	measure := func(q QuerySpec, spec ScanSpec) float64 {
		pool := newPool(db)
		db.Dev.ResetStats()
		if _, err := q.Run(pool, spec); err != nil {
			t.Fatal(err)
		}
		return db.Dev.Stats().Time()
	}
	plans := PaperPlans()
	for _, q := range db.Queries() {
		pSQL := measure(q, ScanSpec{Path: plans[q.Name]})
		smooth := measure(q, ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()})
		ratio := pSQL / smooth
		switch q.Name {
		case "Q6", "Q7", "Q14":
			if ratio < 1.5 {
				t.Errorf("%s: smooth scan should win big over index plan: pSQL=%v smooth=%v", q.Name, pSQL, smooth)
			}
		case "Q1", "Q4":
			if ratio > 1.0/0.6 {
				t.Errorf("%s: smooth scan overhead too high: pSQL=%v smooth=%v", q.Name, pSQL, smooth)
			}
			if smooth > pSQL*1.7 {
				t.Errorf("%s: smooth scan %v vs optimal %v", q.Name, smooth, pSQL)
			}
		}
	}
}

func TestTableIIIOAccounting(t *testing.T) {
	// The Table II effect on Q6: Smooth Scan issues far fewer I/O
	// requests than the index scan, even if it reads more data.
	db := genDB(t, 4000)
	measure := func(spec ScanSpec) disk.Stats {
		pool := newPool(db)
		db.Dev.ResetStats()
		if _, err := db.Q6(pool, spec); err != nil {
			t.Fatal(err)
		}
		return db.Dev.Stats()
	}
	is := measure(ScanSpec{Path: PathIndex})
	ss := measure(ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()})
	if ss.Requests >= is.Requests {
		t.Errorf("smooth scan requests %d >= index scan %d", ss.Requests, is.Requests)
	}
}

func TestQ1AggregatesAreStable(t *testing.T) {
	db := genDB(t, 800)
	pool := newPool(db)
	r1, err := db.Q1(pool, ScanSpec{Path: PathFull})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Rows < 1 || r1.Rows > 6 {
		t.Errorf("Q1 groups = %d, want 1..6", r1.Rows)
	}
}

func TestSmoothLookupWorksAsInner(t *testing.T) {
	// Q14 with the per-key morphing inner (Section IV-B extension):
	// same result as the plain look-up inner.
	db := genDB(t, 800)
	pool := newPool(db)
	pred := db.MonthPred(72)
	scan, err := db.ScanLineitem(pool, pred, ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()})
	if err != nil {
		t.Fatal(err)
	}
	joinPlain := exec.NewIndexNestedLoopJoin(scan, exec.NewIndexLookup(db.Part.File, pool, db.Part.PK), db.Dev, LPartkey)
	nPlain, err := exec.Count(joinPlain)
	if err != nil {
		t.Fatal(err)
	}
	scan2, err := db.ScanLineitem(pool, pred, ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()})
	if err != nil {
		t.Fatal(err)
	}
	joinSmooth := exec.NewIndexNestedLoopJoin(scan2, exec.NewSmoothLookup(db.Part.File, pool, db.Part.PK), db.Dev, LPartkey)
	nSmooth, err := exec.Count(joinSmooth)
	if err != nil {
		t.Fatal(err)
	}
	if nPlain != nSmooth {
		t.Errorf("inner variants disagree: %d vs %d", nPlain, nSmooth)
	}
}

// TestPreparedLineitemTemplate: one validated scan template bound over
// a month sweep produces the same rows and simulated cost as fresh
// per-query ScanLineitem builds — the compile-once/bind-many lifecycle
// at the plan layer.
func TestPreparedLineitemTemplate(t *testing.T) {
	db := genDB(t, 2000)
	pool := newPool(db)
	spec := ScanSpec{Path: PathSmooth, Smooth: DefaultSmooth()}
	tm, err := db.PrepareLineitem(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, month := range []int64{0, 24, 60} {
		pred := db.MonthPred(month)

		pool.Reset()
		db.Dev.ResetStats()
		direct, err := db.ScanLineitem(pool, pred, spec)
		if err != nil {
			t.Fatal(err)
		}
		nDirect, err := exec.Count(direct)
		if err != nil {
			t.Fatal(err)
		}
		costDirect := db.Dev.Stats().Time()

		pool.Reset()
		db.Dev.ResetStats()
		bound, err := tm.BindOn(pool, pred)
		if err != nil {
			t.Fatal(err)
		}
		nBound, err := exec.Count(bound.Op)
		if err != nil {
			t.Fatal(err)
		}
		if nBound != nDirect {
			t.Errorf("month %d: template bind produced %d rows, fresh build %d", month, nBound, nDirect)
		}
		if got := db.Dev.Stats().Time(); got != costDirect {
			t.Errorf("month %d: template bind cost %.3f, fresh build %.3f", month, got, costDirect)
		}
	}
	// Structural validation happens at prepare: an unknown path fails
	// before any predicate exists.
	if _, err := db.PrepareLineitem(ScanSpec{Path: Path(42)}); err == nil {
		t.Error("unknown path accepted by PrepareLineitem")
	}
}
