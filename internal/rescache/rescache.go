// Package rescache is the engine's semantic query-result cache: it
// stores fully materialized result sets keyed on the canonical plan
// shape plus the execution's constant values, so a repeated query —
// ad hoc or prepared, local, sharded or remote — is served from memory
// with zero device I/O.
//
// This tier is distinct from the scan-internal Result Cache of
// internal/core (the paper's Section IV-A structure that holds
// not-yet-deliverable tuples *inside one ordered Smooth Scan*, bounded
// by ScanOptions.ResultCacheBudget). That cache lives and dies with a
// single operator; this package caches *across* executions at the
// query boundary and is bounded by Options.ResultCacheBytes.
//
// Correctness is write-driven: every entry captures the epoch counter
// of each table it read at creation time, and a lookup revalidates
// those epochs against the caller's current view. A write (DB.Insert)
// bumps the table's epoch, so any entry that read the pre-write state
// can never serve again — it is dropped on its next lookup or by the
// sweep. There is no invalidation broadcast to miss.
//
// Eviction follows the ref_cnt/ref_last metadata scheme of the
// scanner-cache-test reference workload: every entry carries a
// reference count and a last-reference time; when a store pushes the
// cache over its byte budget, the least recently referenced entries
// are evicted until it fits. Entries older than the TTL are removed in
// periodic batch sweeps (every sweepEvery stores) and lazily at
// lookup.
package rescache

import (
	"sync"
	"time"
)

// defaultEntryDivisor caps one entry at budget/defaultEntryDivisor
// bytes: a single giant result must not be able to evict the whole
// working set on its way in.
const defaultEntryDivisor = 4

// sweepEvery is the store cadence of the TTL batch-purge sweep: every
// sweepEvery-th store walks the whole cache once and drops expired
// entries, amortising expiry work instead of timing it.
const sweepEvery = 64

// Stats is a point-in-time snapshot of a Cache's accounting.
type Stats struct {
	// Hits and Misses count Lookup outcomes. A lookup that finds an
	// entry whose epochs no longer match counts as a miss (and an
	// InvalidatedStale).
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Stores counts entries admitted; StoreSkips counts results offered
	// but refused (over the per-entry cap).
	Stores     int64 `json:"stores"`
	StoreSkips int64 `json:"store_skips"`
	// InvalidatedStale counts entries dropped because a referenced
	// table's epoch moved past the entry's snapshot — the write-driven
	// invalidation churn.
	InvalidatedStale int64 `json:"invalidated_stale"`
	// Evicted counts entries pushed out by byte-budget pressure, in
	// ref_last order (least recently referenced first).
	Evicted int64 `json:"evicted"`
	// Expired counts entries removed by the TTL batch-purge sweep or by
	// a lookup that found them past their TTL.
	Expired int64 `json:"expired"`
	// Entries and Bytes are the current population; Budget is the
	// configured byte bound.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget"`
}

// View is the caller-visible face of a cache hit: the materialized
// rows (views into the entry — read-only, shared across hits) and the
// entry's metadata at lookup time.
type View struct {
	// Flat is the row data, Rows*Width values back to back.
	Flat []uint64
	// Rows and Width are the result dimensions.
	Rows, Width int
	// Bytes is the entry's accounted size.
	Bytes int64
	// RefCnt is the entry's reference count including this lookup.
	RefCnt int64
	// Age is the time since the entry was created (stored).
	Age time.Duration
}

// entry is one cached result set with its eviction and invalidation
// metadata. Entries form a doubly linked list in ref_last order
// (front = most recently referenced).
type entry struct {
	key    string
	flat   []uint64
	rows   int
	width  int
	bytes  int64
	epochs map[string]uint64 // table -> epoch captured at creation

	refCnt  int64
	refLast time.Time
	created time.Time

	prev, next *entry
}

// Cache is a mutex-guarded semantic result cache bounded by a byte
// budget. It is safe for concurrent use.
type Cache struct {
	mu     sync.Mutex
	budget int64
	// entryCap is the per-entry admission bound (budget/defaultEntryDivisor).
	entryCap int64
	ttl      time.Duration
	now      func() time.Time // injectable for deterministic TTL tests

	entries map[string]*entry
	// head/tail of the ref_last list: head = most recent.
	head, tail *entry
	bytes      int64

	sinceSweep int
	stats      Stats
}

// New creates a cache bounded to budget bytes. A non-positive budget
// returns nil — callers treat a nil *Cache as "tier disabled". ttl of
// zero (or negative) disables expiry.
func New(budget int64, ttl time.Duration) *Cache {
	if budget <= 0 {
		return nil
	}
	if ttl < 0 {
		ttl = 0
	}
	return &Cache{
		budget:   budget,
		entryCap: budget / defaultEntryDivisor,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[string]*entry),
	}
}

// EntryCap returns the per-entry admission bound in bytes: results
// accumulating past it stop accumulating early (the producing query
// will not be cached).
func (c *Cache) EntryCap() int64 { return c.entryCap }

// unlink removes e from the ref_last list.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// pushFront inserts e at the most-recently-referenced end.
func (c *Cache) pushFront(e *entry) {
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// remove drops e from the cache entirely.
func (c *Cache) remove(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.bytes -= e.bytes
}

// expired reports whether e is past its TTL at time t.
func (c *Cache) expired(e *entry, t time.Time) bool {
	return c.ttl > 0 && t.Sub(e.created) > c.ttl
}

// stale reports whether any table e read has moved past the entry's
// epoch snapshot.
func stale(e *entry, epochOf func(string) uint64) bool {
	for table, ep := range e.epochs {
		if epochOf(table) != ep {
			return true
		}
	}
	return false
}

// Lookup returns the entry under key after revalidating it: the entry
// must not be past its TTL and every table epoch captured at creation
// must still match epochOf's current view. A failed revalidation drops
// the entry and reports a miss — a stale entry can never serve.
// Lookup refreshes ref_cnt/ref_last on a hit.
func (c *Cache) Lookup(key string, epochOf func(string) uint64) (View, bool) {
	if c == nil {
		return View{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return View{}, false
	}
	t := c.now()
	if c.expired(e, t) {
		c.remove(e)
		c.stats.Expired++
		c.stats.Misses++
		return View{}, false
	}
	if stale(e, epochOf) {
		c.remove(e)
		c.stats.InvalidatedStale++
		c.stats.Misses++
		return View{}, false
	}
	e.refCnt++
	e.refLast = t
	c.unlink(e)
	c.pushFront(e)
	c.stats.Hits++
	return View{
		Flat:   e.flat,
		Rows:   e.rows,
		Width:  e.width,
		Bytes:  e.bytes,
		RefCnt: e.refCnt,
		Age:    t.Sub(e.created),
	}, true
}

// Store admits a materialized result under key, recording the table
// epochs its execution captured. The accounted size covers the row
// data plus a fixed per-entry overhead; a result over the per-entry
// cap is refused (StoreSkips). Admission evicts least-recently-
// referenced entries until the budget holds, and every sweepEvery-th
// store runs the TTL batch purge first. Storing over an existing key
// replaces it. It reports whether the result was admitted.
func (c *Cache) Store(key string, flat []uint64, rows, width int, epochs map[string]uint64) bool {
	if c == nil {
		return false
	}
	bytes := int64(len(flat))*8 + 256 // data + entry/bookkeeping overhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if bytes > c.entryCap {
		c.stats.StoreSkips++
		return false
	}
	t := c.now()
	c.sinceSweep++
	if c.ttl > 0 && c.sinceSweep >= sweepEvery {
		c.sweepLocked(t)
	}
	if old, ok := c.entries[key]; ok {
		c.remove(old)
	}
	e := &entry{
		key:     key,
		flat:    flat,
		rows:    rows,
		width:   width,
		bytes:   bytes,
		epochs:  epochs,
		refCnt:  0,
		refLast: t,
		created: t,
	}
	c.entries[key] = e
	c.pushFront(e)
	c.bytes += bytes
	for c.bytes > c.budget && c.tail != nil {
		victim := c.tail
		if victim == e {
			break // never evict the entry being admitted
		}
		c.remove(victim)
		c.stats.Evicted++
	}
	c.stats.Stores++
	return true
}

// sweepLocked is the TTL batch purge: one walk over every entry,
// dropping the expired ones. Caller holds c.mu.
func (c *Cache) sweepLocked(t time.Time) {
	c.sinceSweep = 0
	for e := c.head; e != nil; {
		next := e.next
		if c.expired(e, t) {
			c.remove(e)
			c.stats.Expired++
		}
		e = next
	}
}

// SweepExpired runs the TTL batch purge immediately and returns the
// number of entries removed. It is the explicit form of the sweep the
// cache already runs every sweepEvery stores.
func (c *Cache) SweepExpired() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	before := c.stats.Expired
	c.sweepLocked(c.now())
	return int(c.stats.Expired - before)
}

// Purge empties the cache, keeping the counters. DB.ColdCache calls it
// so cold-state measurements cannot be served warm results.
func (c *Cache) Purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]*entry)
	c.head, c.tail = nil, nil
	c.bytes = 0
}

// Stats snapshots the counters and the current population.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	st.Budget = c.budget
	return st
}
