package rescache

import (
	"fmt"
	"testing"
	"time"
)

// fixedEpochs returns an epochOf that always reports the given value.
func fixedEpochs(v uint64) func(string) uint64 {
	return func(string) uint64 { return v }
}

func flatOf(n int) []uint64 {
	f := make([]uint64, n)
	for i := range f {
		f[i] = uint64(i)
	}
	return f
}

func TestDisabledIsNil(t *testing.T) {
	if New(0, 0) != nil {
		t.Fatal("budget 0 must return a nil cache")
	}
	if New(-1, 0) != nil {
		t.Fatal("negative budget must return a nil cache")
	}
	// A nil cache is inert on every method.
	var c *Cache
	if _, ok := c.Lookup("k", fixedEpochs(0)); ok {
		t.Fatal("nil cache hit")
	}
	if c.Store("k", flatOf(2), 1, 2, nil) {
		t.Fatal("nil cache admitted a store")
	}
	c.Purge()
	if c.SweepExpired() != 0 {
		t.Fatal("nil cache swept something")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestStoreLookupRoundTrip(t *testing.T) {
	c := New(1<<20, 0)
	epochs := map[string]uint64{"t": 3}
	if !c.Store("k", flatOf(6), 3, 2, epochs) {
		t.Fatal("store refused")
	}
	v, ok := c.Lookup("k", func(table string) uint64 {
		if table != "t" {
			t.Fatalf("unexpected table %q", table)
		}
		return 3
	})
	if !ok {
		t.Fatal("miss after store")
	}
	if v.Rows != 3 || v.Width != 2 || len(v.Flat) != 6 {
		t.Fatalf("view = %+v", v)
	}
	if v.RefCnt != 1 {
		t.Fatalf("RefCnt = %d, want 1", v.RefCnt)
	}
	v2, ok := c.Lookup("k", fixedEpochs(3))
	if !ok || v2.RefCnt != 2 {
		t.Fatalf("second lookup ok=%v RefCnt=%d", ok, v2.RefCnt)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 0 || st.Stores != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEpochInvalidation(t *testing.T) {
	c := New(1<<20, 0)
	c.Store("k", flatOf(2), 1, 2, map[string]uint64{"t": 1})
	// The table moved: the entry must be dropped, not served.
	if _, ok := c.Lookup("k", fixedEpochs(2)); ok {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.InvalidatedStale != 1 || st.Misses != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Even reverting to the old epoch cannot resurrect it.
	if _, ok := c.Lookup("k", fixedEpochs(1)); ok {
		t.Fatal("dropped entry served")
	}
}

func TestPerEntryCap(t *testing.T) {
	c := New(4096, 0) // entryCap = 1024 bytes
	if c.EntryCap() != 1024 {
		t.Fatalf("EntryCap = %d", c.EntryCap())
	}
	// 200 values * 8 B + 256 B overhead = 1856 > 1024.
	if c.Store("big", flatOf(200), 100, 2, nil) {
		t.Fatal("oversized entry admitted")
	}
	if st := c.Stats(); st.StoreSkips != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionByRecency(t *testing.T) {
	// Budget fits four entries of (32*8 + 256) = 512 bytes exactly (the
	// per-entry cap is budget/4 = 512, which 512-byte entries just
	// meet); the fifth store must evict the least recently *referenced*
	// entry.
	c := New(2048, 0)
	for i := 0; i < 4; i++ {
		if !c.Store(fmt.Sprintf("k%d", i), flatOf(32), 16, 2, nil) {
			t.Fatalf("store %d refused", i)
		}
	}
	// Touch k0 so k1 becomes the coldest.
	if _, ok := c.Lookup("k0", fixedEpochs(0)); !ok {
		t.Fatal("k0 missing")
	}
	if !c.Store("k4", flatOf(32), 16, 2, nil) {
		t.Fatal("store k4 refused")
	}
	if _, ok := c.Lookup("k1", fixedEpochs(0)); ok {
		t.Fatal("k1 survived eviction; recency order not honoured")
	}
	for _, k := range []string{"k0", "k2", "k3", "k4"} {
		if _, ok := c.Lookup(k, fixedEpochs(0)); !ok {
			t.Fatalf("%s evicted unexpectedly", k)
		}
	}
	st := c.Stats()
	if st.Evicted != 1 || st.Entries != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes > st.Budget {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.Budget)
	}
}

func TestTTLExpiryAtLookup(t *testing.T) {
	c := New(1<<20, time.Minute)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	c.Store("k", flatOf(2), 1, 2, nil)
	clock = clock.Add(30 * time.Second)
	if v, ok := c.Lookup("k", fixedEpochs(0)); !ok || v.Age != 30*time.Second {
		t.Fatalf("fresh lookup ok=%v age=%v", ok, v.Age)
	}
	clock = clock.Add(time.Hour)
	if _, ok := c.Lookup("k", fixedEpochs(0)); ok {
		t.Fatal("expired entry served")
	}
	if st := c.Stats(); st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTTLBatchSweep(t *testing.T) {
	c := New(1<<20, time.Minute)
	clock := time.Unix(1000, 0)
	c.now = func() time.Time { return clock }
	for i := 0; i < 10; i++ {
		c.Store(fmt.Sprintf("old%d", i), flatOf(2), 1, 2, nil)
	}
	clock = clock.Add(2 * time.Minute)
	// The explicit sweep removes all expired entries in one batch.
	if n := c.SweepExpired(); n != 10 {
		t.Fatalf("swept %d, want 10", n)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || st.Expired != 10 {
		t.Fatalf("stats = %+v", st)
	}

	// The periodic sweep fires on its own every sweepEvery stores.
	for i := 0; i < 10; i++ {
		c.Store(fmt.Sprintf("a%d", i), flatOf(2), 1, 2, nil)
	}
	clock = clock.Add(2 * time.Minute)
	for i := 0; c.Stats().Expired == 10 && i < 2*sweepEvery; i++ {
		c.Store(fmt.Sprintf("b%d", i), flatOf(2), 1, 2, nil)
	}
	if st := c.Stats(); st.Expired <= 10 {
		t.Fatalf("periodic sweep never fired: %+v", st)
	}
}

func TestStoreReplacesAndPurge(t *testing.T) {
	c := New(1<<20, 0)
	c.Store("k", flatOf(2), 1, 2, nil)
	c.Store("k", flatOf(4), 2, 2, nil)
	if st := c.Stats(); st.Entries != 1 {
		t.Fatalf("replace left %d entries", st.Entries)
	}
	v, ok := c.Lookup("k", fixedEpochs(0))
	if !ok || v.Rows != 2 {
		t.Fatalf("replaced entry: ok=%v rows=%d", ok, v.Rows)
	}
	c.Purge()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("purge left %+v", st)
	}
	if _, ok := c.Lookup("k", fixedEpochs(0)); ok {
		t.Fatal("purged entry served")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1<<20, time.Minute)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", (g+i)%8)
				if _, ok := c.Lookup(key, fixedEpochs(0)); !ok {
					c.Store(key, flatOf(8), 4, 2, map[string]uint64{"t": 0})
				}
				if i%50 == 0 {
					c.SweepExpired()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	st := c.Stats()
	if st.Entries == 0 || st.Entries > 8 {
		t.Fatalf("entries = %d", st.Entries)
	}
}
