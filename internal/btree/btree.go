// Package btree implements a page-oriented B+-tree used as a
// non-clustered secondary index: keys are int64 column values, entries
// point at heap tuples via TIDs.
//
// The tree is bulk-loaded once (the paper builds its indexes before
// measuring, and all measured workloads are read-only) and then
// accessed through the buffer pool with full I/O accounting. Leaves
// are materialised first and contiguously, so a leaf-chain traversal
// is a sequential access pattern — exactly the "#leaves_res × seq_cost"
// term of the paper's index-scan cost model (Eq. 11). Entries are
// sorted by (key, TID), the strict ordering Section IV-A notes enables
// cheap duplicate avoidance.
package btree

import (
	"encoding/binary"
	"fmt"
	"sort"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

const (
	kindLeaf     = 0
	kindInternal = 1

	// headerSize covers the node kind byte, the entry count at [4, 8)
	// and the page checksum at [8, 16) (see disk.StampChecksum).
	headerSize = 16
	// leaf entry: key int64 + TID (page int64, slot int32).
	leafEntrySize = 20
	// internal entry: separator key + child page number.
	internalEntrySize = 16
)

// Entry is one (key, TID) pair.
type Entry struct {
	Key int64
	TID heap.TID
}

// Tree is a read-only, disk-resident B+-tree.
type Tree struct {
	dev       *disk.Device
	space     disk.SpaceID
	root      int64
	height    int   // 1 = root is a leaf
	numLeaves int64 // leaves occupy pages [0, numLeaves)
	numKeys   int64
	leafCap   int
	internCap int

	// delta holds incrementally inserted entries not yet compacted
	// into the on-disk run (see delta.go).
	delta       []Entry
	deltaSorted bool
}

// leafCapacity returns entries per leaf page for a page size.
func leafCapacity(pageSize int) int { return (pageSize - headerSize) / leafEntrySize }

// internalCapacity returns separator keys per internal page.
func internalCapacity(pageSize int) int { return (pageSize - headerSize - 8) / internalEntrySize }

// Build bulk-loads a B+-tree from entries (copied; input order is
// irrelevant — entries are sorted by (key, TID) internally).
func Build(dev *disk.Device, entries []Entry) (*Tree, error) {
	t := &Tree{
		dev:         dev,
		space:       dev.CreateSpace(),
		leafCap:     leafCapacity(dev.PageSize()),
		internCap:   internalCapacity(dev.PageSize()),
		numKeys:     int64(len(entries)),
		deltaSorted: true,
	}
	if t.leafCap < 2 || t.internCap < 2 {
		return nil, fmt.Errorf("btree: page size %d too small", dev.PageSize())
	}
	sorted := append([]Entry(nil), entries...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Key != sorted[j].Key {
			return sorted[i].Key < sorted[j].Key
		}
		return sorted[i].TID.Less(sorted[j].TID)
	})

	// Leaf level.
	page := make([]byte, dev.PageSize())
	var leafFirstKeys []int64
	for start := 0; start < len(sorted) || start == 0; start += t.leafCap {
		end := start + t.leafCap
		if end > len(sorted) {
			end = len(sorted)
		}
		chunk := sorted[start:end]
		encodeLeaf(page, chunk)
		if _, err := dev.AppendPage(t.space, page); err != nil {
			return nil, err
		}
		t.numLeaves++
		if len(chunk) > 0 {
			leafFirstKeys = append(leafFirstKeys, chunk[0].Key)
		} else {
			leafFirstKeys = append(leafFirstKeys, 0)
		}
		if end >= len(sorted) {
			break
		}
	}

	// Internal levels.
	childPages := make([]int64, t.numLeaves)
	for i := range childPages {
		childPages[i] = int64(i)
	}
	childKeys := leafFirstKeys
	t.height = 1
	for len(childPages) > 1 {
		var nextPages []int64
		var nextKeys []int64
		for start := 0; start < len(childPages); start += t.internCap + 1 {
			end := start + t.internCap + 1
			if end > len(childPages) {
				end = len(childPages)
			}
			encodeInternal(page, childKeys[start+1:end], childPages[start:end])
			no, err := dev.AppendPage(t.space, page)
			if err != nil {
				return nil, err
			}
			nextPages = append(nextPages, no)
			nextKeys = append(nextKeys, childKeys[start])
		}
		childPages, childKeys = nextPages, nextKeys
		t.height++
	}
	t.root = childPages[0]
	return t, nil
}

func encodeLeaf(page []byte, entries []Entry) {
	for i := range page {
		page[i] = 0
	}
	page[0] = kindLeaf
	binary.LittleEndian.PutUint32(page[4:], uint32(len(entries)))
	off := headerSize
	for _, e := range entries {
		binary.LittleEndian.PutUint64(page[off:], uint64(e.Key))
		binary.LittleEndian.PutUint64(page[off+8:], uint64(e.TID.Page))
		binary.LittleEndian.PutUint32(page[off+16:], uint32(e.TID.Slot))
		off += leafEntrySize
	}
	disk.StampChecksum(page)
}

// encodeInternal writes an internal node with children[0] as the
// leftmost child and keys[i] separating children[i] from children[i+1].
// len(keys) == len(children)-1.
func encodeInternal(page []byte, keys []int64, children []int64) {
	for i := range page {
		page[i] = 0
	}
	page[0] = kindInternal
	binary.LittleEndian.PutUint32(page[4:], uint32(len(keys)))
	binary.LittleEndian.PutUint64(page[headerSize:], uint64(children[0]))
	off := headerSize + 8
	for i, k := range keys {
		binary.LittleEndian.PutUint64(page[off:], uint64(k))
		binary.LittleEndian.PutUint64(page[off+8:], uint64(children[i+1]))
		off += internalEntrySize
	}
	disk.StampChecksum(page)
}

func nodeKind(page []byte) byte { return page[0] }
func nodeCount(page []byte) int { return int(binary.LittleEndian.Uint32(page[4:])) }

func leafEntry(page []byte, i int) Entry {
	off := headerSize + i*leafEntrySize
	return Entry{
		Key: int64(binary.LittleEndian.Uint64(page[off:])),
		TID: heap.TID{
			Page: int64(binary.LittleEndian.Uint64(page[off+8:])),
			Slot: int32(binary.LittleEndian.Uint32(page[off+16:])),
		},
	}
}

func internalKey(page []byte, i int) int64 {
	off := headerSize + 8 + i*internalEntrySize
	return int64(binary.LittleEndian.Uint64(page[off:]))
}

func internalChild(page []byte, i int) int64 {
	if i == 0 {
		return int64(binary.LittleEndian.Uint64(page[headerSize:]))
	}
	off := headerSize + 8 + (i-1)*internalEntrySize + 8
	return int64(binary.LittleEndian.Uint64(page[off:]))
}

// Space returns the disk space holding the index pages.
func (t *Tree) Space() disk.SpaceID { return t.space }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// NumLeaves returns the number of leaf pages.
func (t *Tree) NumLeaves() int64 { return t.numLeaves }

// NumKeys returns the number of entries in the tree.
func (t *Tree) NumKeys() int64 { return t.numKeys }

// LeafCapacity returns the per-leaf entry capacity (the tree fanout at
// the leaf level, the paper's "fanout" parameter).
func (t *Tree) LeafCapacity() int { return t.leafCap }

// RootKeys returns the separator keys of the root node. The paper uses
// exactly these to partition the Result Cache by key range ("the root
// page is a good indicator of the key value distributions",
// Section IV-A). For a single-leaf tree it returns nil.
func (t *Tree) RootKeys(pool *bufferpool.Pool) ([]int64, error) {
	page, err := pool.Get(t.space, t.root)
	if err != nil {
		return nil, err
	}
	if nodeKind(page) == kindLeaf {
		return nil, nil
	}
	n := nodeCount(page)
	keys := make([]int64, n)
	for i := 0; i < n; i++ {
		keys[i] = internalKey(page, i)
	}
	return keys, nil
}

// Iter iterates entries in (key, TID) order, merging the on-disk run
// with the in-memory insert delta.
type Iter struct {
	tree *Tree
	pool *bufferpool.Pool
	page []byte
	leaf int64
	pos  int

	delta *deltaCursor
	// pendingTree buffers the next on-disk entry during the merge with
	// the delta; a value field (not a pointer) so the iterator does not
	// allocate per entry on the scan path.
	pendingTree Entry
	havePending bool
}

// SeekGE positions an iterator at the first entry with key >= lo.
// The descent costs Height page accesses (random I/O when cold),
// matching the "height × rand_cost" term of Eq. 11.
func (t *Tree) SeekGE(pool *bufferpool.Pool, lo int64) (*Iter, error) {
	pageNo := t.root
	for {
		page, err := pool.Get(t.space, pageNo)
		if err != nil {
			return nil, err
		}
		if nodeKind(page) == kindLeaf {
			it := &Iter{tree: t, pool: pool, page: page, leaf: pageNo, delta: t.deltaSeek(lo)}
			// Binary search within the leaf for the first key >= lo.
			n := nodeCount(page)
			it.pos = sort.Search(n, func(i int) bool { return leafEntry(page, i).Key >= lo })
			// The landing leaf may be exhausted (descent can land one
			// leaf early around duplicate boundaries); advance lazily
			// in Next.
			return it, nil
		}
		// Descend to the first child whose separator is >= lo; keys
		// equal to lo may extend into the child left of the matching
		// separator, so lower-bound (not upper-bound) descent is
		// required for correctness with duplicates.
		n := nodeCount(page)
		idx := sort.Search(n, func(i int) bool { return internalKey(page, i) >= lo })
		pageNo = internalChild(page, idx)
	}
}

// Next returns the next entry in order (on-disk run merged with the
// insert delta). ok is false at the end of the tree. Crossing into the
// next leaf charges one (sequential, when the heap has not intervened)
// page access.
func (it *Iter) Next() (Entry, bool, error) {
	if !it.havePending {
		e, ok, err := it.nextFromRun()
		if err != nil {
			return Entry{}, false, err
		}
		if ok {
			it.pendingTree = e
			it.havePending = true
		}
	}
	de, dok := it.delta.peek()
	switch {
	case !it.havePending && !dok:
		return Entry{}, false, nil
	case !it.havePending:
		it.delta.advance()
		return de, true, nil
	case !dok || less(it.pendingTree, de):
		it.havePending = false
		return it.pendingTree, true, nil
	default:
		it.delta.advance()
		return de, true, nil
	}
}

// nextFromRun yields the next entry of the on-disk run.
func (it *Iter) nextFromRun() (Entry, bool, error) {
	for it.pos >= nodeCount(it.page) {
		if it.leaf+1 >= it.tree.numLeaves {
			return Entry{}, false, nil
		}
		it.leaf++
		page, err := it.pool.Get(it.tree.space, it.leaf)
		if err != nil {
			return Entry{}, false, err
		}
		it.page = page
		it.pos = 0
	}
	e := leafEntry(it.page, it.pos)
	it.pos++
	return e, true, nil
}

// NextInRange returns the next entry with Key < keyHi and TID.Page in
// [pageLo, pageHi), in (key, TID) order; ok is false at the end of the
// tree or at the first entry (of any page) with Key >= keyHi, so leaf
// I/O never extends past the key range. This is the probe stream of a
// page-sharded parallel Smooth Scan worker: out-of-shard entries are
// skipped with a two-word peek per entry, an order of magnitude
// cheaper than full entry decodes through Next, which matters because
// every worker walks the same leaf range.
//
// Use either Next or NextInRange on one iterator, not both.
func (it *Iter) NextInRange(keyHi, pageLo, pageHi int64) (Entry, bool, error) {
	// On-disk run side: scan raw leaf bytes for the next in-range entry.
	if !it.havePending {
		e, ok, err := it.nextFromRunInRange(keyHi, pageLo, pageHi)
		if err != nil {
			return Entry{}, false, err
		}
		if ok {
			it.pendingTree = e
			it.havePending = true
		}
	}
	// Delta side: skip inserted entries outside the shard or key range.
	de, dok := it.delta.peek()
	for dok {
		if de.Key >= keyHi {
			dok = false
			break
		}
		if de.TID.Page >= pageLo && de.TID.Page < pageHi {
			break
		}
		it.delta.advance()
		de, dok = it.delta.peek()
	}
	switch {
	case !it.havePending && !dok:
		return Entry{}, false, nil
	case !it.havePending:
		it.delta.advance()
		return de, true, nil
	case !dok || less(it.pendingTree, de):
		it.havePending = false
		return it.pendingTree, true, nil
	default:
		it.delta.advance()
		return de, true, nil
	}
}

// nextFromRunInRange is nextFromRun restricted to Key < keyHi and
// TID.Page in [pageLo, pageHi). Skipped entries cost two 8-byte loads
// (key, then page number) straight off the leaf page.
func (it *Iter) nextFromRunInRange(keyHi, pageLo, pageHi int64) (Entry, bool, error) {
	for {
		for it.pos >= nodeCount(it.page) {
			if it.leaf+1 >= it.tree.numLeaves {
				return Entry{}, false, nil
			}
			it.leaf++
			page, err := it.pool.Get(it.tree.space, it.leaf)
			if err != nil {
				return Entry{}, false, err
			}
			it.page = page
			it.pos = 0
		}
		n := nodeCount(it.page)
		for it.pos < n {
			off := headerSize + it.pos*leafEntrySize
			if int64(binary.LittleEndian.Uint64(it.page[off:])) >= keyHi {
				return Entry{}, false, nil
			}
			heapPage := int64(binary.LittleEndian.Uint64(it.page[off+8:]))
			if heapPage >= pageLo && heapPage < pageHi {
				e := leafEntry(it.page, it.pos)
				it.pos++
				return e, true, nil
			}
			it.pos++
		}
	}
}

// BuildOnColumn indexes column col of the heap file: one entry per
// tuple, scanning the file directly on the device (bulk load is not a
// measured operation).
func BuildOnColumn(dev *disk.Device, f *heap.File, col int) (*Tree, error) {
	if col < 0 || col >= f.Schema().NumCols() {
		return nil, fmt.Errorf("btree: column %d out of range", col)
	}
	entries := make([]Entry, 0, f.NumTuples())
	row := tuple.NewRow(f.Schema())
	for pageNo := int64(0); pageNo < f.NumPages(); pageNo++ {
		page, err := dev.ReadPage(f.Space(), pageNo)
		if err != nil {
			return nil, err
		}
		n := heap.PageTupleCount(page)
		for s := 0; s < n; s++ {
			row = f.DecodeRow(page, s, row)
			entries = append(entries, Entry{Key: row.Int(col), TID: heap.TID{Page: pageNo, Slot: int32(s)}})
		}
	}
	return Build(dev, entries)
}
