package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/heap"
)

func TestInsertVisibleThroughIterator(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(100))
	pool := bufferpool.New(dev, 64)

	// Insert entries interleaving with existing keys, plus one below
	// and one above the current range.
	inserted := []Entry{
		{Key: -5, TID: heap.TID{Page: 90, Slot: 0}},
		{Key: 50, TID: heap.TID{Page: 91, Slot: 1}}, // duplicate key
		{Key: 200, TID: heap.TID{Page: 92, Slot: 2}},
	}
	for _, e := range inserted {
		tr.Insert(e)
	}
	if tr.NumKeys() != 103 {
		t.Errorf("NumKeys = %d, want 103", tr.NumKeys())
	}
	if tr.DeltaLen() != 3 {
		t.Errorf("DeltaLen = %d", tr.DeltaLen())
	}
	it, err := tr.SeekGE(pool, -100)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != 103 {
		t.Fatalf("iterator returned %d entries, want 103", len(got))
	}
	// Global (key, TID) order must hold across run and delta.
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatalf("order violation at %d: %v then %v", i, got[i-1], got[i])
		}
	}
	if got[0].Key != -5 || got[len(got)-1].Key != 200 {
		t.Errorf("boundary inserts misplaced: first %v last %v", got[0], got[len(got)-1])
	}
}

func TestInsertDuplicateKeyTIDOrdering(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, []Entry{{Key: 5, TID: heap.TID{Page: 3, Slot: 0}}})
	pool := bufferpool.New(dev, 16)
	tr.Insert(Entry{Key: 5, TID: heap.TID{Page: 1, Slot: 0}}) // lower TID
	tr.Insert(Entry{Key: 5, TID: heap.TID{Page: 7, Slot: 0}}) // higher TID
	it, err := tr.SeekGE(pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 6)
	if len(got) != 3 {
		t.Fatalf("entries = %d", len(got))
	}
	if got[0].TID.Page != 1 || got[1].TID.Page != 3 || got[2].TID.Page != 7 {
		t.Errorf("TID merge order wrong: %v", got)
	}
}

func TestSeekSkipsDeltaBelowLo(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(50))
	pool := bufferpool.New(dev, 64)
	tr.Insert(Entry{Key: 10, TID: heap.TID{Page: 99, Slot: 0}})
	tr.Insert(Entry{Key: 30, TID: heap.TID{Page: 99, Slot: 1}})
	it, err := tr.SeekGE(pool, 25)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	for _, e := range got {
		if e.Key < 25 {
			t.Fatalf("entry below lo leaked: %v", e)
		}
	}
	// 25..49 from the run plus the key-30 delta entry.
	if len(got) != 26 {
		t.Errorf("entries = %d, want 26", len(got))
	}
}

func TestCompactMergesDelta(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(200))
	pool := bufferpool.New(dev, 128)
	for i := int64(0); i < 60; i++ {
		tr.Insert(Entry{Key: 1000 + i, TID: heap.TID{Page: i, Slot: 9}})
	}
	if err := tr.Compact(dev, pool); err != nil {
		t.Fatal(err)
	}
	if tr.DeltaLen() != 0 {
		t.Errorf("delta not emptied: %d", tr.DeltaLen())
	}
	if tr.NumKeys() != 260 {
		t.Errorf("NumKeys = %d", tr.NumKeys())
	}
	it, err := tr.SeekGE(pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != 260 {
		t.Fatalf("entries after compact = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatalf("order violation after compact at %d", i)
		}
	}
	// Leaves are contiguous again: a full traversal is mostly
	// sequential.
	dev.ResetStats()
	pool.Reset()
	it2, _ := tr.SeekGE(pool, -1)
	_ = collect(t, it2, 1<<62)
	s := dev.Stats()
	if s.SeqAccesses < tr.NumLeaves()-1 {
		t.Errorf("post-compact traversal not sequential: %+v", s)
	}
}

// Property: run + delta iteration is equivalent to a sorted reference
// over all entries, for random splits between bulk load and inserts.
func TestDeltaMergeEquivalenceProperty(t *testing.T) {
	f := func(bulkRaw, deltaRaw []uint8, loRaw uint8) bool {
		dev := testDevice()
		bulk := make([]Entry, len(bulkRaw))
		for i, v := range bulkRaw {
			bulk[i] = Entry{Key: int64(v) % 48, TID: heap.TID{Page: int64(i), Slot: 0}}
		}
		tr, err := Build(dev, bulk)
		if err != nil {
			return false
		}
		all := append([]Entry(nil), bulk...)
		for i, v := range deltaRaw {
			e := Entry{Key: int64(v) % 48, TID: heap.TID{Page: int64(i), Slot: 1}}
			tr.Insert(e)
			all = append(all, e)
		}
		sort.Slice(all, func(i, j int) bool { return less(all[i], all[j]) })
		lo := int64(loRaw) % 52
		var want []Entry
		for _, e := range all {
			if e.Key >= lo {
				want = append(want, e)
			}
		}
		pool := bufferpool.New(dev, 64)
		it, err := tr.SeekGE(pool, lo)
		if err != nil {
			return false
		}
		var got []Entry
		for {
			e, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			got = append(got, e)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestUnsortedInsertBatch(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, nil)
	pool := bufferpool.New(dev, 32)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tr.Insert(Entry{Key: rng.Int63n(50), TID: heap.TID{Page: int64(i), Slot: 0}})
	}
	it, err := tr.SeekGE(pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != 100 {
		t.Fatalf("entries = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatalf("order violation at %d", i)
		}
	}
}
