package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// Small pages force multi-level trees with few entries:
// leafCap = (256-16)/20 = 12, internCap = (256-24)/16 = 14.
func testDevice() *disk.Device {
	return disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 256})
}

func buildTree(t *testing.T, dev *disk.Device, entries []Entry) *Tree {
	t.Helper()
	tr, err := Build(dev, entries)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func seqEntries(n int) []Entry {
	entries := make([]Entry, n)
	for i := range entries {
		entries[i] = Entry{Key: int64(i), TID: heap.TID{Page: int64(i / 10), Slot: int32(i % 10)}}
	}
	return entries
}

func collect(t *testing.T, it *Iter, limit int64) []Entry {
	t.Helper()
	var out []Entry
	for {
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok || e.Key >= limit {
			return out
		}
		out = append(out, e)
	}
}

func TestEmptyTree(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, nil)
	if tr.Height() != 1 || tr.NumLeaves() != 1 || tr.NumKeys() != 0 {
		t.Errorf("empty tree: h=%d leaves=%d keys=%d", tr.Height(), tr.NumLeaves(), tr.NumKeys())
	}
	pool := bufferpool.New(dev, 4)
	it, err := tr.SeekGE(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := it.Next(); ok {
		t.Error("empty tree produced an entry")
	}
	keys, err := tr.RootKeys(pool)
	if err != nil {
		t.Fatal(err)
	}
	if keys != nil {
		t.Errorf("RootKeys of leaf root = %v", keys)
	}
}

func TestSingleLeaf(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(5))
	if tr.Height() != 1 {
		t.Errorf("Height = %d, want 1", tr.Height())
	}
	pool := bufferpool.New(dev, 4)
	it, err := tr.SeekGE(pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != 3 || got[0].Key != 2 || got[2].Key != 4 {
		t.Errorf("range [2,∞) = %v", got)
	}
}

func TestMultiLevelFullScan(t *testing.T) {
	dev := testDevice()
	const n = 1000 // 1000/12 = 84 leaves -> 84/15 = 6 internals -> root: height 3
	tr := buildTree(t, dev, seqEntries(n))
	if tr.Height() < 3 {
		t.Fatalf("Height = %d, want >= 3 (tree too shallow for the test)", tr.Height())
	}
	if tr.NumKeys() != n {
		t.Errorf("NumKeys = %d", tr.NumKeys())
	}
	pool := bufferpool.New(dev, 256)
	it, err := tr.SeekGE(pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != n {
		t.Fatalf("full scan returned %d entries, want %d", len(got), n)
	}
	for i, e := range got {
		if e.Key != int64(i) {
			t.Fatalf("entry %d has key %d", i, e.Key)
		}
	}
}

func TestSeekLandsOnBoundary(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(1000))
	pool := bufferpool.New(dev, 256)
	for _, lo := range []int64{0, 11, 12, 13, 499, 999, 1000, 5000} {
		it, err := tr.SeekGE(pool, lo)
		if err != nil {
			t.Fatal(err)
		}
		e, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if lo >= 1000 {
			if ok {
				t.Errorf("SeekGE(%d) found %v past the end", lo, e)
			}
			continue
		}
		if !ok || e.Key != lo {
			t.Errorf("SeekGE(%d) first = %v ok=%v, want key %d", lo, e, ok, lo)
		}
	}
}

func TestDuplicateKeysAcrossLeaves(t *testing.T) {
	dev := testDevice()
	// 40 copies of key 5 span several 12-entry leaves, surrounded by
	// other keys — the hard case for separator handling.
	var entries []Entry
	for i := 0; i < 10; i++ {
		entries = append(entries, Entry{Key: 1, TID: heap.TID{Page: 0, Slot: int32(i)}})
	}
	for i := 0; i < 40; i++ {
		entries = append(entries, Entry{Key: 5, TID: heap.TID{Page: 1, Slot: int32(i)}})
	}
	for i := 0; i < 10; i++ {
		entries = append(entries, Entry{Key: 9, TID: heap.TID{Page: 2, Slot: int32(i)}})
	}
	tr := buildTree(t, dev, entries)
	pool := bufferpool.New(dev, 64)

	it, err := tr.SeekGE(pool, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 6)
	if len(got) != 40 {
		t.Fatalf("found %d duplicates of key 5, want 40", len(got))
	}
	// TID order within duplicates must be ascending.
	for i := 1; i < len(got); i++ {
		if !got[i-1].TID.Less(got[i].TID) {
			t.Fatalf("duplicate TIDs out of order at %d: %v then %v", i, got[i-1].TID, got[i].TID)
		}
	}
}

func TestUnsortedInputIsSorted(t *testing.T) {
	dev := testDevice()
	rng := rand.New(rand.NewSource(7))
	entries := seqEntries(300)
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	tr := buildTree(t, dev, entries)
	pool := bufferpool.New(dev, 128)
	it, err := tr.SeekGE(pool, -1)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 1<<62)
	if len(got) != 300 {
		t.Fatalf("len = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Key < got[i-1].Key {
			t.Fatalf("keys out of order at %d", i)
		}
	}
}

func TestLeafPagesAreContiguousAndSequential(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(500))
	pool := bufferpool.New(dev, 256)
	dev.ResetStats()
	it, err := tr.SeekGE(pool, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = collect(t, it, 1<<62)
	s := dev.Stats()
	// Descent: height random-ish reads; leaf chain: numLeaves pages,
	// all but the first sequential because leaves are contiguous.
	wantSeq := tr.NumLeaves() - 1
	if s.SeqAccesses < wantSeq {
		t.Errorf("leaf chain: %d sequential accesses, want >= %d (stats %+v)", s.SeqAccesses, wantSeq, s)
	}
}

func TestRootKeysPartitionKeySpace(t *testing.T) {
	dev := testDevice()
	tr := buildTree(t, dev, seqEntries(1000))
	pool := bufferpool.New(dev, 64)
	keys, err := tr.RootKeys(pool)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("multi-level tree has no root keys")
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Errorf("root keys not sorted: %v", keys)
	}
	if keys[0] <= 0 || keys[len(keys)-1] >= 1000 {
		t.Errorf("root keys outside key range: %v", keys)
	}
}

func TestBuildOnColumn(t *testing.T) {
	dev := testDevice()
	schema := tuple.Ints(3)
	f, err := heap.Create(dev, schema)
	if err != nil {
		t.Fatal(err)
	}
	b := f.NewBuilder()
	const n = 137
	for i := int64(0); i < n; i++ {
		if err := b.Append(tuple.IntsRow(i, i%7, i*3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := BuildOnColumn(dev, f, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumKeys() != n {
		t.Fatalf("NumKeys = %d, want %d", tr.NumKeys(), n)
	}
	pool := bufferpool.New(dev, 128)
	it, err := tr.SeekGE(pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, it, 4)
	want := 0
	for i := int64(0); i < n; i++ {
		if i%7 == 3 {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("key 3 matches = %d, want %d", len(got), want)
	}
	// Every returned TID must point at a tuple whose column 1 is 3.
	for _, e := range got {
		row, err := f.RowAt(pool, e.TID)
		if err != nil {
			t.Fatal(err)
		}
		if row.Int(1) != 3 {
			t.Errorf("TID %v points at row with c2=%d", e.TID, row.Int(1))
		}
	}
	if _, err := BuildOnColumn(dev, f, 5); err == nil {
		t.Error("out-of-range column accepted")
	}
}

// Property: for random multisets of keys and random range bounds, a
// B+-tree range scan returns exactly the entries a sorted reference
// slice says it should, in (key, TID) order.
func TestRangeScanMatchesReferenceProperty(t *testing.T) {
	f := func(rawKeys []int16, loRaw, width uint8) bool {
		dev := testDevice()
		entries := make([]Entry, len(rawKeys))
		for i, k := range rawKeys {
			entries[i] = Entry{Key: int64(k) % 64, TID: heap.TID{Page: int64(i / 8), Slot: int32(i % 8)}}
		}
		tr, err := Build(dev, entries)
		if err != nil {
			return false
		}
		lo := int64(loRaw)%80 - 8
		hi := lo + int64(width)%40

		// Reference.
		ref := append([]Entry(nil), entries...)
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].Key != ref[j].Key {
				return ref[i].Key < ref[j].Key
			}
			return ref[i].TID.Less(ref[j].TID)
		})
		var want []Entry
		for _, e := range ref {
			if e.Key >= lo && e.Key < hi {
				want = append(want, e)
			}
		}

		pool := bufferpool.New(dev, 256)
		it, err := tr.SeekGE(pool, lo)
		if err != nil {
			return false
		}
		var got []Entry
		for {
			e, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok || e.Key >= hi {
				break
			}
			got = append(got, e)
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
