package btree

import (
	"fmt"
	"sort"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
)

// Incremental inserts.
//
// The bulk-loaded tree keeps its leaves physically contiguous — the
// property that makes leaf traversal sequential and that the paper's
// index-scan cost model (Eq. 11) assumes. Split-based in-place inserts
// would destroy that contiguity, so new entries go to a sorted
// in-memory delta instead (the classic read-optimised-store design):
// iterators merge the on-disk run with the delta transparently, and
// Compact rebuilds the on-disk run when the delta has grown enough.
// Queries therefore keep both correctness (all entries visible) and the
// cost profile the experiments measure (delta probes are CPU-only).

// Insert adds an entry to the in-memory delta. It keeps the delta
// sorted by (key, TID); cost is amortised by inserting in batches via
// sort at the first read after a run of inserts.
func (t *Tree) Insert(e Entry) {
	t.delta = append(t.delta, e)
	t.deltaSorted = t.deltaSorted && (len(t.delta) < 2 || less(t.delta[len(t.delta)-2], e))
	t.numKeys++
}

// DeltaLen returns the number of entries waiting in the delta.
func (t *Tree) DeltaLen() int { return len(t.delta) }

func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.TID.Less(b.TID)
}

func (t *Tree) sortDelta() {
	if t.deltaSorted {
		return
	}
	sort.Slice(t.delta, func(i, j int) bool { return less(t.delta[i], t.delta[j]) })
	t.deltaSorted = true
}

// Compact merges the delta into a freshly bulk-loaded on-disk run,
// restoring contiguous leaves. The old pages are abandoned (the
// simulated device is append-only; a real system would reclaim them).
func (t *Tree) Compact(dev *disk.Device, pool *bufferpool.Pool) error {
	t.sortDelta()
	entries := make([]Entry, 0, t.numKeys)
	// Read the existing run directly from the device (compaction is a
	// maintenance operation, like the original bulk load).
	for leaf := int64(0); leaf < t.numLeaves; leaf++ {
		page, err := dev.ReadPage(t.space, leaf)
		if err != nil {
			return err
		}
		if dev.Faulty() && !disk.VerifyChecksum(page) {
			return fmt.Errorf("%w: btree space %d page %d", disk.ErrPageCorrupt, t.space, leaf)
		}
		n := nodeCount(page)
		for i := 0; i < n; i++ {
			entries = append(entries, leafEntry(page, i))
		}
	}
	entries = append(entries, t.delta...)
	rebuilt, err := Build(dev, entries)
	if err != nil {
		return err
	}
	if pool != nil {
		pool.InvalidateSpace(t.space)
	}
	*t = *rebuilt
	return nil
}

// deltaCursor walks the sorted delta from the first entry >= lo.
type deltaCursor struct {
	entries []Entry
	pos     int
}

func (t *Tree) deltaSeek(lo int64) *deltaCursor {
	if len(t.delta) == 0 {
		return nil
	}
	t.sortDelta()
	pos := sort.Search(len(t.delta), func(i int) bool { return t.delta[i].Key >= lo })
	return &deltaCursor{entries: t.delta, pos: pos}
}

func (c *deltaCursor) peek() (Entry, bool) {
	if c == nil || c.pos >= len(c.entries) {
		return Entry{}, false
	}
	return c.entries[c.pos], true
}

func (c *deltaCursor) advance() { c.pos++ }
