// Package workload generates the paper's synthetic tables: the
// micro-benchmark of Section VI-C (10 integer columns, c1 a dense
// primary key, c2 uniform over [0, 10^5), secondary index on c2) and
// the skewed variant of Section VI-D (a dense head of matching tuples
// followed by a sparse tail).
//
// Table sizes are configurable; the paper uses 400M/1.5B rows, this
// reproduction defaults to laptop-scale sizes with identical structure.
package workload

import (
	"fmt"
	"math/rand"

	"smoothscan/internal/btree"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

// DefaultDomain is the value domain of the micro-benchmark's non-key
// columns, as in the paper (0 – 10^5).
const DefaultDomain = 100_000

// Table bundles a loaded heap file with its secondary index.
type Table struct {
	File *heap.File
	// Index is the non-clustered B+-tree on IndexCol.
	Index *btree.Tree
	// IndexCol is the indexed column (c2 = column 1).
	IndexCol int
	// Domain is the value domain of the indexed column.
	Domain int64
}

// MicroConfig parameterises the uniform micro-benchmark table.
type MicroConfig struct {
	// NumRows is the table cardinality.
	NumRows int64
	// NumCols is the column count (the paper uses 10).
	NumCols int
	// Domain is the value domain of non-key columns (default 10^5).
	Domain int64
	// Seed makes generation deterministic.
	Seed int64
}

func (c *MicroConfig) defaults() error {
	if c.NumCols == 0 {
		c.NumCols = 10
	}
	if c.Domain == 0 {
		c.Domain = DefaultDomain
	}
	if c.NumRows < 0 || c.NumCols < 2 {
		return fmt.Errorf("workload: bad config %+v", *c)
	}
	return nil
}

// BuildMicro generates the micro-benchmark table on the device: c1 is
// the row number (primary key), c2..cN are uniform over [0, Domain).
// A secondary index is built on c2. Device statistics are reset
// afterwards so measurements start clean.
func BuildMicro(dev *disk.Device, cfg MicroConfig) (*Table, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := func(i int64, row tuple.Row) {
		row.SetInt(0, i)
		for c := 1; c < cfg.NumCols; c++ {
			row.SetInt(c, rng.Int63n(cfg.Domain))
		}
	}
	return build(dev, cfg.NumCols, cfg.NumRows, cfg.Domain, gen)
}

// SkewConfig parameterises the skewed table of Section VI-D: the first
// DenseRows rows all carry the match value 0 in c2; afterwards one row
// in SparseEvery carries it; all other rows are uniform over
// [1, Domain).
type SkewConfig struct {
	NumRows     int64
	NumCols     int
	Domain      int64
	DenseRows   int64
	SparseEvery int64
	Seed        int64
}

// BuildSkewed generates the skewed table. The paper's instance has
// 1.5B rows with the first 15M matching and 0.001% sparse extras,
// i.e. DenseRows = NumRows/100 and SparseEvery = 100000.
func BuildSkewed(dev *disk.Device, cfg SkewConfig) (*Table, error) {
	m := MicroConfig{NumRows: cfg.NumRows, NumCols: cfg.NumCols, Domain: cfg.Domain, Seed: cfg.Seed}
	if err := m.defaults(); err != nil {
		return nil, err
	}
	if cfg.DenseRows < 0 || cfg.DenseRows > cfg.NumRows || cfg.SparseEvery < 1 {
		return nil, fmt.Errorf("workload: bad skew config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	gen := func(i int64, row tuple.Row) {
		row.SetInt(0, i)
		var c2 int64
		switch {
		case i < cfg.DenseRows:
			c2 = 0
		case (i-cfg.DenseRows)%cfg.SparseEvery == 0:
			c2 = 0
		default:
			c2 = 1 + rng.Int63n(m.Domain-1)
		}
		row.SetInt(1, c2)
		for c := 2; c < m.NumCols; c++ {
			row.SetInt(c, rng.Int63n(m.Domain))
		}
	}
	return build(dev, m.NumCols, m.NumRows, m.Domain, gen)
}

func build(dev *disk.Device, numCols int, numRows, domain int64, gen func(i int64, row tuple.Row)) (*Table, error) {
	file, err := heap.Create(dev, tuple.Ints(numCols))
	if err != nil {
		return nil, err
	}
	b := file.NewBuilder()
	row := tuple.NewRow(file.Schema())
	for i := int64(0); i < numRows; i++ {
		gen(i, row)
		if err := b.Append(row); err != nil {
			return nil, err
		}
	}
	if err := b.Flush(); err != nil {
		return nil, err
	}
	tree, err := btree.BuildOnColumn(dev, file, 1)
	if err != nil {
		return nil, err
	}
	dev.ResetStats()
	return &Table{File: file, Index: tree, IndexCol: 1, Domain: domain}, nil
}

// PredForSelectivity returns the paper's stress predicate
// "c2 >= 0 and c2 < X" sized for the requested selectivity (a
// fraction in [0,1]) under the uniform distribution. Selectivity 0
// yields an empty range; 1 covers the whole domain.
func (t *Table) PredForSelectivity(sel float64) tuple.RangePred {
	if sel < 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	hi := int64(sel * float64(t.Domain))
	if sel == 1 {
		hi = t.Domain
	}
	return tuple.RangePred{Col: t.IndexCol, Lo: 0, Hi: hi}
}
