package workload

import (
	"math"
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/disk"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
)

func smallDev() *disk.Device {
	return disk.NewDevice(disk.Profile{Name: "t", RandCost: 10, SeqCost: 1, PageSize: 1024})
}

func countMatches(t *testing.T, tab *Table, dev *disk.Device, pred tuple.RangePred) int64 {
	t.Helper()
	pool := bufferpool.New(dev, 64)
	var n int64
	row := tuple.NewRow(tab.File.Schema())
	for p := int64(0); p < tab.File.NumPages(); p++ {
		page, err := tab.File.GetPage(pool, p)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < heap.PageTupleCount(page); s++ {
			row = tab.File.DecodeRow(page, s, row)
			if pred.Matches(row) {
				n++
			}
		}
	}
	return n
}

func TestBuildMicroShape(t *testing.T) {
	dev := smallDev()
	tab, err := BuildMicro(dev, MicroConfig{NumRows: 5000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.File.NumTuples() != 5000 {
		t.Errorf("NumTuples = %d", tab.File.NumTuples())
	}
	if tab.File.Schema().NumCols() != 10 {
		t.Errorf("NumCols = %d, want 10 (paper layout)", tab.File.Schema().NumCols())
	}
	if tab.Index.NumKeys() != 5000 {
		t.Errorf("index keys = %d", tab.Index.NumKeys())
	}
	// Device stats were reset after the bulk load.
	if dev.Stats().PagesRead != 0 {
		t.Errorf("stats not reset: %+v", dev.Stats())
	}
}

func TestBuildMicroDeterministic(t *testing.T) {
	devA, devB := smallDev(), smallDev()
	a, err := BuildMicro(devA, MicroConfig{NumRows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMicro(devB, MicroConfig{NumRows: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	poolA := bufferpool.New(devA, 8)
	poolB := bufferpool.New(devB, 8)
	for _, i := range []int64{0, 99, 499} {
		ra, err := a.File.RowAt(poolA, a.File.TIDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		rb, err := b.File.RowAt(poolB, b.File.TIDOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ra.Equal(rb) {
			t.Fatalf("row %d differs across same-seed builds", i)
		}
	}
}

func TestPredForSelectivity(t *testing.T) {
	dev := smallDev()
	tab, err := BuildMicro(dev, MicroConfig{NumRows: 20000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, sel := range []float64{0, 0.001, 0.01, 0.1, 0.5, 1.0} {
		pred := tab.PredForSelectivity(sel)
		got := float64(countMatches(t, tab, dev, pred)) / 20000
		if math.Abs(got-sel) > 0.02+sel*0.1 {
			t.Errorf("sel %v: actual %v", sel, got)
		}
	}
}

func TestPredForSelectivityClamps(t *testing.T) {
	dev := smallDev()
	tab, err := BuildMicro(dev, MicroConfig{NumRows: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p := tab.PredForSelectivity(-1); p.Hi != p.Lo {
		t.Errorf("negative sel: %v", p)
	}
	if p := tab.PredForSelectivity(2); p.Hi != tab.Domain {
		t.Errorf("sel > 1: %v", p)
	}
}

func TestBuildSkewedShape(t *testing.T) {
	dev := smallDev()
	cfg := SkewConfig{NumRows: 10000, DenseRows: 1000, SparseEvery: 500, Seed: 5}
	tab, err := BuildSkewed(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Matches: 1000 dense + every 500th of the remaining 9000 = 18.
	pred := tuple.RangePred{Col: 1, Lo: 0, Hi: 1}
	got := countMatches(t, tab, dev, pred)
	want := int64(1000 + 9000/500)
	if got != want {
		t.Errorf("skew matches = %d, want %d", got, want)
	}
	// The dense head is physically at the start of the heap.
	pool := bufferpool.New(dev, 8)
	first, err := tab.File.RowAt(pool, heap.TID{Page: 0, Slot: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.Int(1) != 0 {
		t.Errorf("first row c2 = %d, want 0", first.Int(1))
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := BuildMicro(smallDev(), MicroConfig{NumRows: -1}); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := BuildSkewed(smallDev(), SkewConfig{NumRows: 10, DenseRows: 20, SparseEvery: 1}); err == nil {
		t.Error("dense > total accepted")
	}
	if _, err := BuildSkewed(smallDev(), SkewConfig{NumRows: 10, DenseRows: 1, SparseEvery: 0}); err == nil {
		t.Error("zero sparse interval accepted")
	}
}
