package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smoothscan/internal/core"
	"smoothscan/internal/exec"
	"smoothscan/internal/optimizer"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// Pred is a predicate on one integer column: a half-open value range
// [lo, hi). Predicates are combined conjunctively by Query.Where;
// several predicates on the same column intersect into one range.
//
// Because ranges are half-open over int64, a predicate can never match
// the value math.MaxInt64 itself; the engine's data generators and
// workloads never store it.
type Pred struct {
	lo, hi int64
}

// Between matches lo <= v < hi.
func Between(lo, hi int64) Pred { return Pred{lo: lo, hi: hi} }

// Eq matches v == x.
func Eq(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: x, hi: x} // unrepresentable; matches nothing
	}
	return Pred{lo: x, hi: x + 1}
}

// Lt matches v < x.
func Lt(x int64) Pred { return Pred{lo: math.MinInt64, hi: x} }

// Le matches v <= x.
func Le(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: math.MinInt64, hi: x}
	}
	return Pred{lo: math.MinInt64, hi: x + 1}
}

// Gt matches v > x.
func Gt(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: x, hi: x} // matches nothing
	}
	return Pred{lo: x + 1, hi: math.MaxInt64}
}

// Ge matches v >= x.
func Ge(x int64) Pred { return Pred{lo: x, hi: math.MaxInt64} }

// Agg is an aggregate expression for Query.GroupBy. Build one with
// Sum, Count, Min or Max, and rename its output column with As.
type Agg struct {
	name string
	col  string
	kind exec.AggKind
}

// Sum aggregates the sum of col per group; the output column is named
// "sum_<col>".
func Sum(col string) Agg { return Agg{name: "sum_" + col, col: col, kind: exec.AggSum} }

// Count counts the rows of each group; the output column is named
// "count".
func Count() Agg { return Agg{name: "count", kind: exec.AggCount} }

// Min aggregates the minimum of col per group; the output column is
// named "min_<col>".
func Min(col string) Agg { return Agg{name: "min_" + col, col: col, kind: exec.AggMin} }

// Max aggregates the maximum of col per group; the output column is
// named "max_<col>".
func Max(col string) Agg { return Agg{name: "max_" + col, col: col, kind: exec.AggMax} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.name = name; return a }

// ErrUnknownColumn is returned (wrapped) when a query references a
// column the table does not have.
var ErrUnknownColumn = errors.New("smoothscan: no such column")

// ErrNotSelected is returned (wrapped) by Rows.Column when the column
// exists on the scanned table but the query's Select/GroupBy projected
// it away.
var ErrNotSelected = errors.New("smoothscan: column not in query output")

// cond is one Where clause before compilation.
type cond struct {
	col string
	p   Pred
}

// Query is a composable query under construction. Build one with
// DB.Query, chain Where / Select / GroupBy / OrderBy / Limit /
// WithOptions, then call Run to execute it or Explain to inspect the
// plan the optimizer would choose. Builder methods record the first
// error and make Run/Explain return it, so call sites can chain
// without per-call checks.
//
// A Query is a plain value owned by its builder chain; it is not safe
// for concurrent use, but the Rows returned by Run is independent of
// it. Compilation reads table statistics at Run/Explain time, so the
// same Query re-run after Analyze may pick a different access path.
type Query struct {
	db     *DB
	table  string
	conds  []cond
	sel    []string
	hasSel bool
	group  string
	aggs   []Agg
	hasAgg bool
	order  string
	hasOrd bool
	limit  int64
	hasLim bool
	opts   ScanOptions
	// compat is set by the DB.Scan wrapper: it preserves the exact
	// pre-builder Scan semantics (no empty-range short-circuit, and a
	// missing index is an error rather than a full-scan fallback).
	compat bool
	err    error
}

// Query starts a composable query over the named table. The zero
// configuration scans every row with the default access path
// (Smooth Scan when the driving column has an index, full scan
// otherwise).
func (db *DB) Query(table string) *Query {
	return &Query{db: db, table: table}
}

// fail records the first builder error.
func (q *Query) fail(err error) *Query {
	if q.err == nil {
		q.err = err
	}
	return q
}

// Where adds a conjunctive predicate on a column. Multiple Where calls
// compose with AND; several predicates on the same column intersect
// into one range. The optimizer picks the most selective indexed
// predicate to drive the scan; the remaining conjuncts become residual
// predicates evaluated inside the page decode wherever the chosen
// access path supports it.
func (q *Query) Where(col string, p Pred) *Query {
	q.conds = append(q.conds, cond{col: col, p: p})
	return q
}

// Select projects the output onto the named columns, in the given
// order. Without Select every table column is returned. When GroupBy
// is present, its group and aggregate columns are resolved against the
// selected columns.
func (q *Query) Select(cols ...string) *Query {
	if q.hasSel {
		return q.fail(fmt.Errorf("smoothscan: Select set twice"))
	}
	if len(cols) == 0 {
		return q.fail(fmt.Errorf("smoothscan: Select requires at least one column"))
	}
	q.sel = append([]string(nil), cols...)
	q.hasSel = true
	return q
}

// GroupBy groups rows by a column and computes the aggregates per
// group. The output schema is the group column followed by one column
// per aggregate, ordered by ascending group key.
func (q *Query) GroupBy(col string, aggs ...Agg) *Query {
	if q.hasAgg {
		return q.fail(fmt.Errorf("smoothscan: GroupBy set twice"))
	}
	if len(aggs) == 0 {
		return q.fail(fmt.Errorf("smoothscan: GroupBy requires at least one aggregate"))
	}
	q.group = col
	q.aggs = append([]Agg(nil), aggs...)
	q.hasAgg = true
	return q
}

// OrderBy orders the output by the named column, ascending. The
// column must be part of the query output. When the order is already
// delivered — by an order-preserving access path on the driving
// column, or by GroupBy's key-ordered output — no sort operator is
// added; otherwise a posterior (external) sort is.
func (q *Query) OrderBy(col string) *Query {
	if q.hasOrd {
		return q.fail(fmt.Errorf("smoothscan: OrderBy set twice"))
	}
	q.order = col
	q.hasOrd = true
	return q
}

// Limit caps the number of output rows. Limit(0) yields an empty
// result without touching the device.
func (q *Query) Limit(n int64) *Query {
	if n < 0 {
		return q.fail(fmt.Errorf("smoothscan: negative limit %d", n))
	}
	q.limit = n
	q.hasLim = true
	return q
}

// WithOptions applies ScanOptions to the driving table access: access
// path, morphing policy and trigger, parallelism, cardinality
// estimate, SLA bound, Result Cache budget. The builder owns
// everything above the scan, the options configure the scan itself.
func (q *Query) WithOptions(opts ScanOptions) *Query {
	q.opts = opts
	return q
}

// resolvedPred is a compiled predicate with its column name kept for
// plan rendering.
type resolvedPred struct {
	name string
	pred tuple.RangePred
}

// compiledQuery is the outcome of planning: everything needed to build
// the operator tree or render the Explain plan.
type compiledQuery struct {
	tab      *table
	table    string
	base     *tuple.Schema
	emptyWhy string // non-empty: plan short-circuits to an empty result

	driving    resolvedPred
	hasDriving bool // false: no predicates at all (pure full scan)
	residual   []resolvedPred
	path       AccessPath
	choice     *optimizer.Choice
	cfg        core.Config
	ordered    bool // scan-level ordered delivery
	par        int
	estDriving int64
	estScan    int64 // after residual conjuncts
	pushed     bool  // residual evaluated inside the scan

	selIdx    []int
	selSchema *tuple.Schema

	groupIdx  int // in selSchema; -1 = no grouping
	aggSpecs  []exec.AggSpec
	aggSchema *tuple.Schema

	orderIdx int // in the pre-sort schema; -1 = no ordering
	needSort bool
	orderVia string // "", "scan" (native order) or "group" (agg key order)

	limit  int64
	hasLim bool

	out *tuple.Schema
}

// residualPreds extracts the bare predicates.
func (cq *compiledQuery) residualPreds() []tuple.RangePred {
	if len(cq.residual) == 0 {
		return nil
	}
	out := make([]tuple.RangePred, len(cq.residual))
	for i, r := range cq.residual {
		out[i] = r.pred
	}
	return out
}

// compile plans the query. The caller holds db.mu (read).
func (q *Query) compile() (*compiledQuery, error) {
	if q.err != nil {
		return nil, q.err
	}
	db := q.db
	t, err := db.tableLocked(q.table)
	if err != nil {
		return nil, err
	}
	cq := &compiledQuery{tab: t, table: q.table, base: t.file.Schema(), groupIdx: -1, orderIdx: -1}
	opts := q.opts
	if opts.MaxRegionPages == 0 {
		opts.MaxRegionPages = core.DefaultMaxRegionPages
	}

	// Fold the Where clauses into one range per column, preserving
	// first-mention order.
	var merged []resolvedPred
	byCol := map[string]int{}
	for _, c := range q.conds {
		col := cq.base.ColIndex(c.col)
		if col < 0 {
			return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, c.col)
		}
		rp := tuple.RangePred{Col: col, Lo: c.p.lo, Hi: c.p.hi}
		if i, ok := byCol[c.col]; ok {
			merged[i].pred = merged[i].pred.Intersect(rp)
		} else {
			byCol[c.col] = len(merged)
			merged = append(merged, resolvedPred{name: c.col, pred: rp})
		}
	}
	if !q.compat {
		for _, m := range merged {
			if m.pred.Empty() {
				cq.emptyWhy = fmt.Sprintf("predicates on %q are contradictory", m.name)
			}
		}
		if q.hasLim && q.limit == 0 {
			cq.emptyWhy = "LIMIT 0"
		}
	}

	params := db.costParams(t)
	stats := t.stats
	if stats == nil {
		stats = optimizer.DefaultStats(t.file.NumTuples(), t.file.NumPages(), nil)
	}

	// Driving-predicate selection: the most selective indexed conjunct
	// (by the optimizer's cardinality estimate) drives the access path;
	// everything else is residual.
	drivingAt := -1
	if q.compat {
		drivingAt = 0 // exactly one predicate by construction
	} else {
		bestCard := int64(math.MaxInt64)
		for i, m := range merged {
			if _, ok := t.indexes[m.name]; !ok {
				continue
			}
			if card := stats.EstimateCard(m.pred); card < bestCard {
				bestCard, drivingAt = card, i
			}
		}
		if drivingAt < 0 && len(merged) > 0 {
			drivingAt = 0 // no indexed conjunct: full scan driven by the first
		}
	}
	if drivingAt >= 0 {
		cq.driving = merged[drivingAt]
		cq.hasDriving = true
		for i, m := range merged {
			if i != drivingAt {
				cq.residual = append(cq.residual, m)
			}
		}
	} else {
		cq.driving = resolvedPred{name: cq.base.Col(0).Name, pred: tuple.All(0)}
	}
	_, hasIndex := t.indexes[cq.driving.name]

	// Cardinality estimates (independence assumption across conjuncts).
	cq.estDriving = opts.EstimatedRows
	if cq.estDriving == 0 {
		cq.estDriving = stats.EstimateCard(cq.driving.pred)
	}
	sel := 1.0
	for _, r := range cq.residual {
		sel *= stats.EstimateSelectivity(r.pred)
	}
	cq.estScan = int64(math.Round(float64(cq.estDriving) * sel))

	// Does the query want its output in driving-key order, with no
	// grouping in between? Then an order-preserving access path can
	// satisfy the ORDER BY for free — the optimizer should weigh the
	// posterior sort against that.
	wantScanOrder := q.hasOrd && !q.hasAgg && cq.hasDriving && q.order == cq.driving.name
	ordered := opts.Ordered || wantScanOrder

	// Access-path resolution.
	path := opts.Path
	if path == PathAuto {
		if !cq.hasDriving {
			path = PathFull
		} else {
			choice := optimizer.ChooseAccessPath(params, stats, cq.driving.pred, hasIndex, opts.Ordered || wantScanOrder)
			cq.choice = &choice
			switch choice.Path {
			case optimizer.PathFullScan:
				path = PathFull
			case optimizer.PathIndexScan:
				path = PathIndex
			case optimizer.PathSortScan:
				path = PathSort
			}
			cq.estDriving = choice.EstimatedCard
			cq.estScan = int64(math.Round(float64(cq.estDriving) * sel))
		}
	}
	switch path {
	case PathSmooth, PathIndex, PathSort, PathSwitch:
		if !hasIndex {
			if path == PathSmooth && !q.compat {
				// The builder's default path is PathSmooth; without an
				// index on the driving column it degrades gracefully to
				// a full scan instead of failing, so predicate-less and
				// unindexed queries still run. DB.Scan keeps the strict
				// historical behaviour.
				path = PathFull
			} else {
				return nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, q.table, cq.driving.name)
			}
		}
	case PathFull:
	default:
		return nil, fmt.Errorf("smoothscan: unknown access path %d", opts.Path)
	}
	if opts.Ordered {
		// Explicit scan-level ordering keeps the historical contract:
		// paths that cannot deliver it refuse, rather than silently
		// sorting. Use OrderBy for a plan-level ordering that falls
		// back to a posterior sort.
		switch path {
		case PathFull:
			return nil, fmt.Errorf("smoothscan: full scan cannot deliver ordered output; add an explicit sort")
		case PathSwitch:
			return nil, fmt.Errorf("smoothscan: switch scan cannot guarantee ordered output")
		}
	}
	nativeOrder := ordered && (path == PathSmooth || path == PathIndex || path == PathSort)
	cq.ordered = nativeOrder
	cq.path = path

	par := opts.Parallelism
	if par > MaxParallelism {
		par = MaxParallelism
	}
	if int64(par) > t.file.NumPages() {
		par = int(t.file.NumPages())
	}
	if par > 1 && (path == PathSmooth || path == PathFull) {
		cq.par = par
	} else {
		cq.par = 1
	}

	cq.cfg = core.Config{
		Policy:            opts.Policy,
		Trigger:           opts.Trigger,
		Ordered:           nativeOrder,
		MaxRegionPages:    opts.MaxRegionPages,
		EstimatedCard:     cq.estDriving,
		SLABound:          opts.SLABound,
		CostParams:        params,
		ResultCacheBudget: opts.ResultCacheBudget,
	}
	cq.pushed = len(cq.residual) > 0 &&
		(path == PathFull || (path == PathSmooth && !nativeOrder))

	// SELECT list.
	cq.selSchema = cq.base
	if q.hasSel {
		cols := make([]tuple.Column, len(q.sel))
		cq.selIdx = make([]int, len(q.sel))
		for i, name := range q.sel {
			col := cq.base.ColIndex(name)
			if col < 0 {
				return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, name)
			}
			cq.selIdx[i] = col
			cols[i] = cq.base.Col(col)
		}
		s, err := tuple.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: Select: %w", err)
		}
		cq.selSchema = s
	}

	// GROUP BY + aggregates.
	stage := cq.selSchema
	if q.hasAgg {
		cq.groupIdx = cq.selSchema.ColIndex(q.group)
		if cq.groupIdx < 0 {
			return nil, q.stageColErr(q.group, "GroupBy")
		}
		names := map[string]bool{q.group: true}
		outCols := []tuple.Column{{Name: q.group, Type: tuple.Int64}}
		for _, a := range q.aggs {
			spec := exec.AggSpec{Name: a.name, Kind: a.kind}
			if a.kind != exec.AggCount {
				spec.Col = cq.selSchema.ColIndex(a.col)
				if spec.Col < 0 {
					return nil, q.stageColErr(a.col, "aggregate")
				}
			}
			if names[a.name] {
				return nil, fmt.Errorf("smoothscan: duplicate output column %q in GroupBy", a.name)
			}
			names[a.name] = true
			cq.aggSpecs = append(cq.aggSpecs, spec)
			outCols = append(outCols, tuple.Column{Name: a.name, Type: tuple.Int64})
		}
		s, err := tuple.NewSchema(outCols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: GroupBy: %w", err)
		}
		cq.aggSchema = s
		stage = s
	}

	// ORDER BY.
	if q.hasOrd {
		cq.orderIdx = stage.ColIndex(q.order)
		if cq.orderIdx < 0 {
			return nil, fmt.Errorf("%w: %q is not in the query output; add it to Select or GroupBy", ErrUnknownColumn, q.order)
		}
		switch {
		case q.hasAgg && q.order == q.group:
			cq.orderVia = "group" // HashAgg emits ascending group keys
		case nativeOrder && !q.hasAgg && q.order == cq.driving.name:
			cq.orderVia = "scan"
		default:
			cq.needSort = true
		}
	}

	cq.limit, cq.hasLim = q.limit, q.hasLim
	cq.out = stage
	return cq, nil
}

// stageColErr distinguishes "no such column" from "column projected
// away" for GroupBy/aggregate resolution.
func (q *Query) stageColErr(col, what string) error {
	// The caller holds db.mu; tableLocked succeeded moments ago.
	t, err := q.db.tableLocked(q.table)
	if err == nil && t.file.Schema().ColIndex(col) >= 0 {
		return fmt.Errorf("%w: %s column %q was projected away by Select", ErrNotSelected, what, col)
	}
	return fmt.Errorf("%w: table %q has no column %q (%s)", ErrUnknownColumn, q.table, col, what)
}

// build constructs the operator tree for a compiled query, wrapping
// every stage in a row/batch counter for ExecStats. The caller holds
// db.mu (read).
func (cq *compiledQuery) build(db *DB, ctx context.Context) (exec.Operator, *plan.Scan, []*opCounter, error) {
	var counters []*opCounter
	count := func(name string, op exec.Operator) exec.Operator {
		c := &opCounter{name: name}
		counters = append(counters, c)
		return &countedOp{inner: op, c: c}
	}

	if cq.emptyWhy != "" {
		root := count("empty", exec.NewValues(cq.out, nil))
		return root, nil, counters, nil
	}

	spec := plan.ScanSpec{
		File:            cq.tab.file,
		Pool:            db.pool,
		Pred:            cq.driving.pred,
		Residual:        cq.residualPreds(),
		Smooth:          cq.cfg,
		Ordered:         cq.ordered,
		SwitchThreshold: cq.estDriving,
		Parallelism:     cq.par,
		Ctx:             ctx,
	}
	if tree, ok := cq.tab.indexes[cq.driving.name]; ok {
		spec.Tree = tree
	}
	switch cq.path {
	case PathSmooth:
		spec.Path = plan.PathSmooth
	case PathFull:
		spec.Path = plan.PathFull
	case PathIndex:
		spec.Path = plan.PathIndex
	case PathSort:
		spec.Path = plan.PathSort
	case PathSwitch:
		spec.Path = plan.PathSwitch
	}
	built, err := plan.Build(spec)
	if err != nil {
		if errors.Is(err, plan.ErrNeedsIndex) {
			return nil, nil, nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, cq.table, cq.driving.name)
		}
		return nil, nil, nil, err
	}

	scanName := cq.path.String()
	if cq.par > 1 {
		scanName = fmt.Sprintf("parallel[%d] %s", cq.par, scanName)
	}
	cur := count(scanName, built.Op)
	if ctx != nil {
		cur = &ctxGuard{inner: cur, ctx: ctx}
	}

	if len(cq.residual) > 0 && !built.ResidualPushed {
		preds := cq.residualPreds()
		cur = count("filter", exec.NewFilter(cur, db.dev, func(r tuple.Row) bool {
			return tuple.MatchesAll(preds, r)
		}))
	}
	if cq.selIdx != nil {
		p, err := exec.NewColProject(cur, cq.selIdx)
		if err != nil {
			return nil, nil, nil, err
		}
		cur = count("project", p)
	}
	if cq.groupIdx >= 0 {
		cur = count("hash-agg", exec.NewHashAggNamed(cur, db.dev, cq.groupIdx, cq.out.Col(0).Name, cq.aggSpecs))
	}
	if cq.needSort {
		cur = count("sort", exec.NewSort(cur, db.dev, cq.orderIdx))
	}
	if cq.hasLim {
		cur = count("limit", exec.NewLimit(cur, cq.limit))
	}
	return cur, built, counters, nil
}

// Explain compiles the query — access-path choice, residual placement,
// parallelism, per-node cardinality estimates — without executing it
// or touching the simulated device, and returns the printable plan.
func (q *Query) Explain() (*Plan, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	q.db.mu.RLock()
	defer q.db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return cq.plan(), nil
}

// Run compiles and starts the query. The context cancels it: the
// returned Rows checks ctx once per batch refill (never per tuple),
// parallel scan workers observe it between batches and exit promptly,
// and blocking operators (sort, aggregation) check it between the
// batches they drain. After cancellation Rows.Err reports ctx.Err().
//
// As with Scan, always Close the returned Rows.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	db := q.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	root, built, counters, err := cq.build(db, ctx)
	if err != nil {
		return nil, err
	}
	rows := &Rows{
		schema:     cq.out,
		baseSchema: cq.base,
		ctx:        ctx,
		counters:   counters,
		compiled:   cq,
		choice:     cq.choice,
		op:         root,
	}
	if built != nil {
		rows.smooth = built.Smooth
		rows.smoothAll = built.Workers
	}
	rows.ioStart = db.dev.Stats()
	if err := root.Open(); err != nil {
		return nil, err
	}
	rows.db = db
	db.openScans.Add(1)
	return rows, nil
}
