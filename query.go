package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"math"

	"smoothscan/internal/core"
	"smoothscan/internal/exec"
	"smoothscan/internal/optimizer"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// Pred is a predicate on one integer column: a half-open value range
// [lo, hi). Predicates are combined conjunctively by Query.Where;
// several predicates on the same column intersect into one range.
//
// Because ranges are half-open over int64, a predicate can never match
// the value math.MaxInt64 itself; the engine's data generators and
// workloads never store it.
type Pred struct {
	lo, hi int64
}

// Between matches lo <= v < hi.
func Between(lo, hi int64) Pred { return Pred{lo: lo, hi: hi} }

// Eq matches v == x.
func Eq(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: x, hi: x} // unrepresentable; matches nothing
	}
	return Pred{lo: x, hi: x + 1}
}

// Lt matches v < x.
func Lt(x int64) Pred { return Pred{lo: math.MinInt64, hi: x} }

// Le matches v <= x.
func Le(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: math.MinInt64, hi: x}
	}
	return Pred{lo: math.MinInt64, hi: x + 1}
}

// Gt matches v > x.
func Gt(x int64) Pred {
	if x == math.MaxInt64 {
		return Pred{lo: x, hi: x} // matches nothing
	}
	return Pred{lo: x + 1, hi: math.MaxInt64}
}

// Ge matches v >= x.
func Ge(x int64) Pred { return Pred{lo: x, hi: math.MaxInt64} }

// Agg is an aggregate expression for Query.GroupBy. Build one with
// Sum, Count, Min or Max, and rename its output column with As.
type Agg struct {
	name string
	col  string
	kind exec.AggKind
}

// Sum aggregates the sum of col per group; the output column is named
// "sum_<col>".
func Sum(col string) Agg { return Agg{name: "sum_" + col, col: col, kind: exec.AggSum} }

// Count counts the rows of each group; the output column is named
// "count".
func Count() Agg { return Agg{name: "count", kind: exec.AggCount} }

// Min aggregates the minimum of col per group; the output column is
// named "min_<col>".
func Min(col string) Agg { return Agg{name: "min_" + col, col: col, kind: exec.AggMin} }

// Max aggregates the maximum of col per group; the output column is
// named "max_<col>".
func Max(col string) Agg { return Agg{name: "max_" + col, col: col, kind: exec.AggMax} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.name = name; return a }

// ErrUnknownColumn is returned (wrapped) when a query references a
// column the table does not have.
var ErrUnknownColumn = errors.New("smoothscan: no such column")

// ErrNotSelected is returned (wrapped) by Rows.Column when the column
// exists on the scanned table but the query's Select/GroupBy projected
// it away.
var ErrNotSelected = errors.New("smoothscan: column not in query output")

// cond is one Where clause before compilation.
type cond struct {
	col string
	p   Pred
}

// joinClause is one Join call before compilation.
type joinClause struct {
	table    string
	leftCol  string
	rightCol string
	opts     ScanOptions
}

// Query is a composable query under construction. Build one with
// DB.Query, chain Where / Select / GroupBy / OrderBy / Limit /
// WithOptions, then call Run to execute it or Explain to inspect the
// plan the optimizer would choose. Builder methods record the first
// error and make Run/Explain return it, so call sites can chain
// without per-call checks.
//
// A Query is a plain value owned by its builder chain; it is not safe
// for concurrent use, but the Rows returned by Run is independent of
// it. Compilation reads table statistics at Run/Explain time, so the
// same Query re-run after Analyze may pick a different access path.
type Query struct {
	db     *DB
	table  string
	conds  []cond
	joins  []joinClause
	sel    []string
	hasSel bool
	group  string
	aggs   []Agg
	hasAgg bool
	order  string
	hasOrd bool
	limit  int64
	hasLim bool
	opts   ScanOptions
	// compat is set by the DB.Scan wrapper: it preserves the exact
	// pre-builder Scan semantics (no empty-range short-circuit, and a
	// missing index is an error rather than a full-scan fallback).
	compat bool
	err    error
}

// Query starts a composable query over the named table. The zero
// configuration scans every row with the default access path
// (Smooth Scan when the driving column has an index, full scan
// otherwise).
func (db *DB) Query(table string) *Query {
	return &Query{db: db, table: table}
}

// fail records the first builder error.
func (q *Query) fail(err error) *Query {
	if q.err == nil {
		q.err = err
	}
	return q
}

// Where adds a conjunctive predicate on a column. Multiple Where calls
// compose with AND; several predicates on the same column intersect
// into one range. The optimizer picks the most selective indexed
// predicate to drive the scan; the remaining conjuncts become residual
// predicates evaluated inside the page decode wherever the chosen
// access path supports it.
func (q *Query) Where(col string, p Pred) *Query {
	q.conds = append(q.conds, cond{col: col, p: p})
	return q
}

// Join adds an inner equi-join with another table:
// left.leftCol = right.rightCol, where leftCol is a column of the
// query's output so far (the driving table, or any previously joined
// table) and rightCol is a column of the newly joined table. The
// output schema is the left columns followed by the right table's
// (colliding right column names get an "r." prefix).
//
// Where predicates may reference columns of any joined table — each
// conjunct is pushed beneath the join into the access path of the one
// table that has the column (ambiguous names are an error). Each
// input's access path is planned independently from its own
// predicates and ScanOptions — the adaptive Smooth Scan by default,
// any forced path or the cost-based optimizer (PathAuto) via
// JoinWithOptions — and the smaller estimated input lands on the hash
// build side. The first join runs as a merge join instead when both
// its base-table inputs already arrive ordered by their join columns
// (index scans, or Ordered smooth/sort scans driven by the join
// column); later stages of a chain always hash, since a join output's
// ordering is not tracked. The joined table's scan uses default
// ScanOptions; use JoinWithOptions to configure it.
func (q *Query) Join(table, leftCol, rightCol string) *Query {
	q.joins = append(q.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol})
	return q
}

// JoinWithOptions is Join with explicit ScanOptions for the joined
// table's access path (the builder-level WithOptions only configures
// the driving table).
func (q *Query) JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) *Query {
	q.joins = append(q.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol, opts: opts})
	return q
}

// Select projects the output onto the named columns, in the given
// order. Without Select every table column is returned. When GroupBy
// is present, its group and aggregate columns are resolved against the
// selected columns.
func (q *Query) Select(cols ...string) *Query {
	if q.hasSel {
		return q.fail(fmt.Errorf("smoothscan: Select set twice"))
	}
	if len(cols) == 0 {
		return q.fail(fmt.Errorf("smoothscan: Select requires at least one column"))
	}
	q.sel = append([]string(nil), cols...)
	q.hasSel = true
	return q
}

// GroupBy groups rows by a column and computes the aggregates per
// group. The output schema is the group column followed by one column
// per aggregate, ordered by ascending group key.
func (q *Query) GroupBy(col string, aggs ...Agg) *Query {
	if q.hasAgg {
		return q.fail(fmt.Errorf("smoothscan: GroupBy set twice"))
	}
	if len(aggs) == 0 {
		return q.fail(fmt.Errorf("smoothscan: GroupBy requires at least one aggregate"))
	}
	q.group = col
	q.aggs = append([]Agg(nil), aggs...)
	q.hasAgg = true
	return q
}

// OrderBy orders the output by the named column, ascending. The
// column must be part of the query output. When the order is already
// delivered — by an order-preserving access path on the driving
// column, or by GroupBy's key-ordered output — no sort operator is
// added; otherwise a posterior (external) sort is.
func (q *Query) OrderBy(col string) *Query {
	if q.hasOrd {
		return q.fail(fmt.Errorf("smoothscan: OrderBy set twice"))
	}
	q.order = col
	q.hasOrd = true
	return q
}

// Limit caps the number of output rows. Limit(0) yields an empty
// result without touching the device.
func (q *Query) Limit(n int64) *Query {
	if n < 0 {
		return q.fail(fmt.Errorf("smoothscan: negative limit %d", n))
	}
	q.limit = n
	q.hasLim = true
	return q
}

// WithOptions applies ScanOptions to the driving table access: access
// path, morphing policy and trigger, parallelism, cardinality
// estimate, SLA bound, Result Cache budget. The builder owns
// everything above the scan, the options configure the scan itself.
func (q *Query) WithOptions(opts ScanOptions) *Query {
	q.opts = opts
	return q
}

// resolvedPred is a compiled predicate with its column name kept for
// plan rendering.
type resolvedPred struct {
	name string
	pred tuple.RangePred
}

// tableAccess is one base table's compiled access: its predicates,
// the chosen access path, morphing configuration and parallelism —
// the per-input slice of what used to be the whole compiled query
// before joins made plans multi-input.
type tableAccess struct {
	tab        *table
	name       string
	base       *tuple.Schema
	driving    resolvedPred
	hasDriving bool // false: no predicates at all (pure full scan)
	residual   []resolvedPred
	path       AccessPath
	choice     *optimizer.Choice
	cfg        core.Config
	ordered    bool // scan-level ordered delivery
	par        int
	estDriving int64
	estScan    int64 // after residual conjuncts
	pushed     bool  // residual evaluated inside the scan
	emptyWhy   string
}

// residualPreds extracts the bare predicates.
func (a *tableAccess) residualPreds() []tuple.RangePred {
	if len(a.residual) == 0 {
		return nil
	}
	out := make([]tuple.RangePred, len(a.residual))
	for i, r := range a.residual {
		out[i] = r.pred
	}
	return out
}

// deliversOrderOn reports whether the access emits rows ordered by the
// given base-schema column: the column must drive the scan and the
// path must preserve index-key order (index scans always do; smooth
// and sort scans do when their ordered variant was chosen).
func (a *tableAccess) deliversOrderOn(col int) bool {
	if a.driving.pred.Col != col {
		return false
	}
	switch a.path {
	case PathIndex:
		return true
	case PathSmooth, PathSort:
		return a.ordered
	}
	return false
}

// joinStage is one compiled equi-join of the left-deep join tree:
// stage k joins the output of everything before it with inputs[k+1].
type joinStage struct {
	leftCol   int // in the accumulated left schema
	rightCol  int // in the right input's base schema
	leftName  string
	rightName string
	algo      plan.JoinAlgo
	buildLeft bool
	estRows   int64
}

// compiledQuery is the outcome of planning: everything needed to build
// the operator tree or render the Explain plan.
type compiledQuery struct {
	inputs   []*tableAccess // left-deep; inputs[0] is the driving table
	joins    []*joinStage   // len(inputs)-1 stages
	base     *tuple.Schema  // joined row schema (inputs[0].base when no joins)
	emptyWhy string         // non-empty: plan short-circuits to an empty result

	selIdx    []int
	selSchema *tuple.Schema

	groupIdx  int // in selSchema; -1 = no grouping
	aggSpecs  []exec.AggSpec
	aggSchema *tuple.Schema

	orderIdx int // in the pre-sort schema; -1 = no ordering
	needSort bool
	orderVia string // "", "scan" (native order) or "group" (agg key order)

	limit  int64
	hasLim bool

	out *tuple.Schema
}

// driving returns the first (driving-table) input.
func (cq *compiledQuery) driving() *tableAccess { return cq.inputs[0] }

// estRoot is the cardinality estimate of the scan/join tree before
// projection and aggregation.
func (cq *compiledQuery) estRoot() int64 {
	if n := len(cq.joins); n > 0 {
		return cq.joins[n-1].estRows
	}
	return cq.driving().estScan
}

// compileAccess plans one base table's access from its Where
// conjuncts and ScanOptions. orderCol, when non-empty, names a column
// whose order the plan could use for free if it happens to drive an
// order-preserving path (the free-ORDER-BY case); compat preserves the
// historical DB.Scan strictness.
func compileAccess(db *DB, name string, t *table, conds []cond, opts ScanOptions, orderCol string, compat bool) (*tableAccess, error) {
	a := &tableAccess{tab: t, name: name, base: t.file.Schema()}
	if opts.MaxRegionPages == 0 {
		opts.MaxRegionPages = core.DefaultMaxRegionPages
	}

	// Fold the Where clauses into one range per column, preserving
	// first-mention order.
	var merged []resolvedPred
	byCol := map[string]int{}
	for _, c := range conds {
		col := a.base.ColIndex(c.col)
		if col < 0 {
			// compile routes each cond to the one table whose schema
			// has the column, so a miss here is an internal invariant
			// violation, not a user error.
			return nil, fmt.Errorf("smoothscan: internal: cond on %q routed to table %q which lacks it", c.col, name)
		}
		rp := tuple.RangePred{Col: col, Lo: c.p.lo, Hi: c.p.hi}
		if i, ok := byCol[c.col]; ok {
			merged[i].pred = merged[i].pred.Intersect(rp)
		} else {
			byCol[c.col] = len(merged)
			merged = append(merged, resolvedPred{name: c.col, pred: rp})
		}
	}
	if !compat {
		for _, m := range merged {
			if m.pred.Empty() {
				a.emptyWhy = fmt.Sprintf("predicates on %q are contradictory", m.name)
			}
		}
	}

	params := db.costParams(t)
	stats := t.stats
	if stats == nil {
		stats = optimizer.DefaultStats(t.file.NumTuples(), t.file.NumPages(), nil)
	}

	// Driving-predicate selection: the most selective indexed conjunct
	// (by the optimizer's cardinality estimate) drives the access path;
	// everything else is residual.
	drivingAt := -1
	if compat {
		drivingAt = 0 // exactly one predicate by construction
	} else {
		bestCard := int64(math.MaxInt64)
		for i, m := range merged {
			if _, ok := t.indexes[m.name]; !ok {
				continue
			}
			if card := stats.EstimateCard(m.pred); card < bestCard {
				bestCard, drivingAt = card, i
			}
		}
		if drivingAt < 0 && len(merged) > 0 {
			drivingAt = 0 // no indexed conjunct: full scan driven by the first
		}
	}
	if drivingAt >= 0 {
		a.driving = merged[drivingAt]
		a.hasDriving = true
		for i, m := range merged {
			if i != drivingAt {
				a.residual = append(a.residual, m)
			}
		}
	} else {
		a.driving = resolvedPred{name: a.base.Col(0).Name, pred: tuple.All(0)}
	}
	_, hasIndex := t.indexes[a.driving.name]

	// Cardinality estimates (independence assumption across conjuncts).
	a.estDriving = opts.EstimatedRows
	if a.estDriving == 0 {
		a.estDriving = stats.EstimateCard(a.driving.pred)
	}
	sel := 1.0
	for _, r := range a.residual {
		sel *= stats.EstimateSelectivity(r.pred)
	}
	a.estScan = int64(math.Round(float64(a.estDriving) * sel))

	// Does the caller want output in this column's order? Then an
	// order-preserving access path driven by it satisfies the ORDER BY
	// for free — the optimizer weighs the posterior sort against that.
	wantScanOrder := orderCol != "" && a.hasDriving && orderCol == a.driving.name
	ordered := opts.Ordered || wantScanOrder

	// Access-path resolution.
	path := opts.Path
	if path == PathAuto {
		if !a.hasDriving {
			path = PathFull
		} else {
			choice := optimizer.ChooseAccessPath(params, stats, a.driving.pred, hasIndex, opts.Ordered || wantScanOrder)
			a.choice = &choice
			switch choice.Path {
			case optimizer.PathFullScan:
				path = PathFull
			case optimizer.PathIndexScan:
				path = PathIndex
			case optimizer.PathSortScan:
				path = PathSort
			}
			a.estDriving = choice.EstimatedCard
			a.estScan = int64(math.Round(float64(a.estDriving) * sel))
		}
	}
	switch path {
	case PathSmooth, PathIndex, PathSort, PathSwitch:
		if !hasIndex {
			if path == PathSmooth && !compat {
				// The builder's default path is PathSmooth; without an
				// index on the driving column it degrades gracefully to
				// a full scan instead of failing, so predicate-less and
				// unindexed queries still run. DB.Scan keeps the strict
				// historical behaviour.
				path = PathFull
			} else {
				return nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, name, a.driving.name)
			}
		}
	case PathFull:
	default:
		return nil, fmt.Errorf("smoothscan: unknown access path %d", opts.Path)
	}
	if opts.Ordered {
		// Explicit scan-level ordering keeps the historical contract:
		// paths that cannot deliver it refuse, rather than silently
		// sorting. Use OrderBy for a plan-level ordering that falls
		// back to a posterior sort.
		switch path {
		case PathFull:
			return nil, fmt.Errorf("smoothscan: full scan cannot deliver ordered output; add an explicit sort")
		case PathSwitch:
			return nil, fmt.Errorf("smoothscan: switch scan cannot guarantee ordered output")
		}
	}
	nativeOrder := ordered && (path == PathSmooth || path == PathIndex || path == PathSort)
	a.ordered = nativeOrder
	a.path = path

	par := opts.Parallelism
	if par > MaxParallelism {
		par = MaxParallelism
	}
	if int64(par) > t.file.NumPages() {
		par = int(t.file.NumPages())
	}
	if par > 1 && (path == PathSmooth || path == PathFull) {
		a.par = par
	} else {
		a.par = 1
	}

	a.cfg = core.Config{
		Policy:            opts.Policy,
		Trigger:           opts.Trigger,
		Ordered:           nativeOrder,
		MaxRegionPages:    opts.MaxRegionPages,
		EstimatedCard:     a.estDriving,
		SLABound:          opts.SLABound,
		CostParams:        params,
		ResultCacheBudget: opts.ResultCacheBudget,
	}
	a.pushed = len(a.residual) > 0 &&
		(path == PathFull || (path == PathSmooth && !nativeOrder))
	return a, nil
}

// joinOutputSchema computes the join's output schema — the same
// tuple.Schema concatenation the join operators apply at run time
// ("r." prefix on right columns shadowed by the left) — turning a
// still-colliding name into a compile-time error instead of a panic.
func joinOutputSchema(left, right *tuple.Schema) (*tuple.Schema, error) {
	s, err := left.ConcatChecked(right)
	if err != nil {
		return nil, fmt.Errorf("smoothscan: join output schema: %w (rename columns or reorder joins)", err)
	}
	return s, nil
}

// estJoinRows estimates an equi-join's output cardinality assuming
// the right join column is key-like: |L| x |R| / |right table|,
// floored at one row when both inputs are non-empty.
func estJoinRows(estL, estR, rightTableRows int64) int64 {
	if estL <= 0 || estR <= 0 {
		return 0
	}
	if rightTableRows <= 0 {
		return estL
	}
	est := int64(math.Round(float64(estL) * float64(estR) / float64(rightTableRows)))
	if est < 1 {
		est = 1
	}
	return est
}

// compile plans the query. The caller holds db.mu (read).
func (q *Query) compile() (*compiledQuery, error) {
	if q.err != nil {
		return nil, q.err
	}
	db := q.db
	cq := &compiledQuery{groupIdx: -1, orderIdx: -1}

	// Resolve every input table and distribute the Where conjuncts:
	// each predicate is pushed beneath the joins into the one input
	// whose schema has the column.
	names := []string{q.table}
	optsPer := []ScanOptions{q.opts}
	for _, j := range q.joins {
		names = append(names, j.table)
		optsPer = append(optsPer, j.opts)
	}
	tabs := make([]*table, len(names))
	for i, name := range names {
		t, err := db.tableLocked(name)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}
	condsPer := make([][]cond, len(names))
	for _, c := range q.conds {
		at := -1
		for i, t := range tabs {
			if t.file.Schema().ColIndex(c.col) < 0 {
				continue
			}
			if at >= 0 {
				return nil, fmt.Errorf("smoothscan: Where column %q is ambiguous between tables %q and %q", c.col, names[at], names[i])
			}
			at = i
		}
		if at < 0 {
			if len(names) == 1 {
				return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, c.col)
			}
			return nil, fmt.Errorf("%w: no joined table has column %q", ErrUnknownColumn, c.col)
		}
		condsPer[at] = append(condsPer[at], c)
	}

	// Only the driving table of a join-free query can satisfy an ORDER
	// BY through an order-preserving scan; joins and grouping reorder.
	orderCol := func(i int) string {
		if i != 0 || len(q.joins) > 0 || !q.hasOrd || q.hasAgg {
			return ""
		}
		return q.order
	}

	cq.inputs = make([]*tableAccess, len(names))
	for i := range names {
		a, err := compileAccess(db, names[i], tabs[i], condsPer[i], optsPer[i], orderCol(i), q.compat)
		if err != nil {
			return nil, err
		}
		if a.emptyWhy != "" && cq.emptyWhy == "" {
			cq.emptyWhy = a.emptyWhy
		}
		cq.inputs[i] = a
	}
	if !q.compat && q.hasLim && q.limit == 0 {
		cq.emptyWhy = "LIMIT 0"
	}

	// Join stages: resolve the equi-join columns, pick the algorithm
	// (merge when both inputs already arrive ordered by their join
	// columns, hash otherwise) and the hash build side (the smaller
	// estimated input).
	cq.base = cq.inputs[0].base
	estLeft := cq.inputs[0].estScan
	for k, jc := range q.joins {
		right := cq.inputs[k+1]
		leftCol := cq.base.ColIndex(jc.leftCol)
		if leftCol < 0 {
			return nil, fmt.Errorf("%w: join %d: %q is not a column of the query output joined so far", ErrUnknownColumn, k+1, jc.leftCol)
		}
		rightCol := right.base.ColIndex(jc.rightCol)
		if rightCol < 0 {
			return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, right.name, jc.rightCol)
		}
		st := &joinStage{
			leftCol:   leftCol,
			rightCol:  rightCol,
			leftName:  cq.base.Col(leftCol).Name,
			rightName: right.base.Col(rightCol).Name,
		}
		if k == 0 && cq.inputs[0].deliversOrderOn(leftCol) && right.deliversOrderOn(rightCol) {
			st.algo = plan.JoinMerge
		} else {
			st.algo = plan.JoinHash
			st.buildLeft = estLeft < right.estScan
		}
		st.estRows = estJoinRows(estLeft, right.estScan, right.tab.file.NumTuples())
		joined, err := joinOutputSchema(cq.base, right.base)
		if err != nil {
			return nil, err
		}
		cq.base = joined
		estLeft = st.estRows
		cq.joins = append(cq.joins, st)
	}

	// SELECT list.
	cq.selSchema = cq.base
	if q.hasSel {
		cols := make([]tuple.Column, len(q.sel))
		cq.selIdx = make([]int, len(q.sel))
		for i, name := range q.sel {
			col := cq.base.ColIndex(name)
			if col < 0 {
				if len(cq.inputs) == 1 {
					return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, name)
				}
				return nil, fmt.Errorf("%w: join output has no column %q", ErrUnknownColumn, name)
			}
			cq.selIdx[i] = col
			cols[i] = cq.base.Col(col)
		}
		s, err := tuple.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: Select: %w", err)
		}
		cq.selSchema = s
	}

	// GROUP BY + aggregates.
	stage := cq.selSchema
	if q.hasAgg {
		cq.groupIdx = cq.selSchema.ColIndex(q.group)
		if cq.groupIdx < 0 {
			return nil, cq.stageColErr(q.group, "GroupBy")
		}
		names := map[string]bool{q.group: true}
		outCols := []tuple.Column{{Name: q.group, Type: tuple.Int64}}
		for _, a := range q.aggs {
			spec := exec.AggSpec{Name: a.name, Kind: a.kind}
			if a.kind != exec.AggCount {
				spec.Col = cq.selSchema.ColIndex(a.col)
				if spec.Col < 0 {
					return nil, cq.stageColErr(a.col, "aggregate")
				}
			}
			if names[a.name] {
				return nil, fmt.Errorf("smoothscan: duplicate output column %q in GroupBy", a.name)
			}
			names[a.name] = true
			cq.aggSpecs = append(cq.aggSpecs, spec)
			outCols = append(outCols, tuple.Column{Name: a.name, Type: tuple.Int64})
		}
		s, err := tuple.NewSchema(outCols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: GroupBy: %w", err)
		}
		cq.aggSchema = s
		stage = s
	}

	// ORDER BY.
	if q.hasOrd {
		cq.orderIdx = stage.ColIndex(q.order)
		if cq.orderIdx < 0 {
			return nil, fmt.Errorf("%w: %q is not in the query output; add it to Select or GroupBy", ErrUnknownColumn, q.order)
		}
		switch {
		case q.hasAgg && q.order == q.group:
			cq.orderVia = "group" // HashAgg emits ascending group keys
		case len(cq.joins) == 0 && cq.driving().ordered && !q.hasAgg && q.order == cq.driving().driving.name:
			cq.orderVia = "scan"
		default:
			cq.needSort = true
		}
	}

	cq.limit, cq.hasLim = q.limit, q.hasLim
	cq.out = stage
	return cq, nil
}

// stageColErr distinguishes "no such column" from "column projected
// away" for GroupBy/aggregate resolution.
func (cq *compiledQuery) stageColErr(col, what string) error {
	if cq.base.ColIndex(col) >= 0 {
		return fmt.Errorf("%w: %s column %q was projected away by Select", ErrNotSelected, what, col)
	}
	if len(cq.inputs) == 1 {
		return fmt.Errorf("%w: table %q has no column %q (%s)", ErrUnknownColumn, cq.driving().name, col, what)
	}
	return fmt.Errorf("%w: join output has no column %q (%s)", ErrUnknownColumn, col, what)
}

// builtQuery is the executable outcome of build: the root operator
// plus the handles ExecStats reads (the driving table's Smooth Scan
// operator(s), the join operators, the per-stage counters).
type builtQuery struct {
	root     exec.Operator
	smooth   *core.SmoothScan
	workers  []*core.SmoothScan
	joins    []exec.JoinStatser
	counters []*opCounter
}

// buildInput constructs one table access through the plan layer,
// wrapped in its counter, context guard and (when the access path
// could not absorb the residual conjuncts) a filter operator.
func (cq *compiledQuery) buildInput(db *DB, ctx context.Context, a *tableAccess, bq *builtQuery, count func(string, exec.Operator) exec.Operator) (exec.Operator, error) {
	spec := plan.ScanSpec{
		File:            a.tab.file,
		Pool:            db.pool,
		Pred:            a.driving.pred,
		Residual:        a.residualPreds(),
		Smooth:          a.cfg,
		Ordered:         a.ordered,
		SwitchThreshold: a.estDriving,
		Parallelism:     a.par,
		Ctx:             ctx,
	}
	if tree, ok := a.tab.indexes[a.driving.name]; ok {
		spec.Tree = tree
	}
	switch a.path {
	case PathSmooth:
		spec.Path = plan.PathSmooth
	case PathFull:
		spec.Path = plan.PathFull
	case PathIndex:
		spec.Path = plan.PathIndex
	case PathSort:
		spec.Path = plan.PathSort
	case PathSwitch:
		spec.Path = plan.PathSwitch
	}
	built, err := plan.Build(spec)
	if err != nil {
		if errors.Is(err, plan.ErrNeedsIndex) {
			return nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, a.name, a.driving.name)
		}
		return nil, err
	}
	if a == cq.driving() {
		bq.smooth = built.Smooth
		bq.workers = built.Workers
	}

	// Counter names keep the historical single-table form ("smooth",
	// "filter"); multi-input plans qualify them with the table.
	multi := len(cq.inputs) > 1
	scanName := a.path.String()
	if multi {
		scanName = fmt.Sprintf("%s(%s)", a.path, a.name)
	}
	if a.par > 1 {
		scanName = fmt.Sprintf("parallel[%d] %s", a.par, scanName)
	}
	cur := count(scanName, built.Op)
	if ctx != nil {
		// Each input gets its own guard, so a blocking consumer (a
		// hash-join build, a sort) observes cancellation per batch.
		cur = &ctxGuard{inner: cur, ctx: ctx}
	}
	if len(a.residual) > 0 && !built.ResidualPushed {
		preds := a.residualPreds()
		name := "filter"
		if multi {
			name = fmt.Sprintf("filter(%s)", a.name)
		}
		cur = count(name, exec.NewFilter(cur, db.dev, func(r tuple.Row) bool {
			return tuple.MatchesAll(preds, r)
		}))
	}
	return cur, nil
}

// build constructs the operator tree for a compiled query, wrapping
// every stage in a row/batch counter for ExecStats. The caller holds
// db.mu (read).
func (cq *compiledQuery) build(db *DB, ctx context.Context) (*builtQuery, error) {
	bq := &builtQuery{}
	count := func(name string, op exec.Operator) exec.Operator {
		c := &opCounter{name: name}
		bq.counters = append(bq.counters, c)
		return &countedOp{inner: op, c: c}
	}

	if cq.emptyWhy != "" {
		bq.root = count("empty", exec.NewValues(cq.out, nil))
		return bq, nil
	}

	inOps := make([]exec.Operator, len(cq.inputs))
	for i, a := range cq.inputs {
		op, err := cq.buildInput(db, ctx, a, bq, count)
		if err != nil {
			return nil, err
		}
		inOps[i] = op
	}

	cur := inOps[0]
	for k, st := range cq.joins {
		op, err := plan.BuildJoin(plan.JoinSpec{
			Left:      cur,
			Right:     inOps[k+1],
			LeftCol:   st.leftCol,
			RightCol:  st.rightCol,
			Algo:      st.algo,
			BuildLeft: st.buildLeft,
			Dev:       db.dev,
		})
		if err != nil {
			return nil, err
		}
		bq.joins = append(bq.joins, op.(exec.JoinStatser))
		cur = count(st.algo.String()+"-join", op)
	}

	if cq.selIdx != nil {
		p, err := exec.NewColProject(cur, cq.selIdx)
		if err != nil {
			return nil, err
		}
		cur = count("project", p)
	}
	if cq.groupIdx >= 0 {
		cur = count("hash-agg", exec.NewHashAggNamed(cur, db.dev, cq.groupIdx, cq.out.Col(0).Name, cq.aggSpecs))
	}
	if cq.needSort {
		cur = count("sort", exec.NewSort(cur, db.dev, cq.orderIdx))
	}
	if cq.hasLim {
		cur = count("limit", exec.NewLimit(cur, cq.limit))
	}
	bq.root = cur
	return bq, nil
}

// Explain compiles the query — access-path choice, residual placement,
// parallelism, per-node cardinality estimates — without executing it
// or touching the simulated device, and returns the printable plan.
func (q *Query) Explain() (*Plan, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	q.db.mu.RLock()
	defer q.db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return cq.plan(), nil
}

// Run compiles and starts the query. The context cancels it: the
// returned Rows checks ctx once per batch refill (never per tuple),
// parallel scan workers observe it between batches and exit promptly,
// and blocking operators (sort, aggregation) check it between the
// batches they drain. After cancellation Rows.Err reports ctx.Err().
//
// As with Scan, always Close the returned Rows.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	db := q.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	bq, err := cq.build(db, ctx)
	if err != nil {
		return nil, err
	}
	rows := &Rows{
		schema:     cq.out,
		baseSchema: cq.base,
		ctx:        ctx,
		counters:   bq.counters,
		compiled:   cq,
		choice:     cq.driving().choice,
		op:         bq.root,
		smooth:     bq.smooth,
		smoothAll:  bq.workers,
		joins:      bq.joins,
	}
	rows.ioStart = db.dev.Stats()
	if err := bq.root.Open(); err != nil {
		return nil, err
	}
	rows.db = db
	db.openScans.Add(1)
	return rows, nil
}
