package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"smoothscan/internal/core"
	"smoothscan/internal/exec"
	"smoothscan/internal/optimizer"
	"smoothscan/internal/plan"
	"smoothscan/internal/tuple"
)

// Arg is one argument of a predicate constructor or Limit: an int64
// literal, or a named parameter placeholder created by Param. Integer
// literals convert implicitly (the constructors accept any integer
// kind); parameters get their value at execution time from a Bind set,
// which is what lets one prepared Stmt run many times with different
// constants.
type Arg struct {
	param string
	lit   int64
	err   error
}

// Param is a named placeholder usable anywhere a literal goes: in the
// Where predicate constructors (Between, Eq, Lt, Le, Gt, Ge) and in
// Limit. A query containing parameters must be compiled with
// DB.Prepare; running it directly returns ErrUnboundParam. Names
// consist of letters, digits and underscores.
func Param(name string) Arg {
	if name == "" {
		return Arg{err: fmt.Errorf("smoothscan: empty parameter name")}
	}
	for _, r := range name {
		if !(r == '_' || r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return Arg{err: fmt.Errorf("smoothscan: parameter name %q: only letters, digits and underscores are allowed", name)}
		}
	}
	return Arg{param: name}
}

// asArg converts a constructor argument: an Arg passes through, any
// integer kind becomes a literal, everything else is ErrArgType.
func asArg(v any) Arg {
	switch x := v.(type) {
	case Arg:
		return x
	case int:
		return Arg{lit: int64(x)}
	case int64:
		return Arg{lit: x}
	case int32:
		return Arg{lit: int64(x)}
	case int16:
		return Arg{lit: int64(x)}
	case int8:
		return Arg{lit: int64(x)}
	case uint8:
		return Arg{lit: int64(x)}
	case uint16:
		return Arg{lit: int64(x)}
	case uint32:
		return Arg{lit: int64(x)}
	case uint:
		if uint64(x) > math.MaxInt64 {
			return Arg{err: fmt.Errorf("%w: %d overflows int64", ErrArgType, x)}
		}
		return Arg{lit: int64(x)}
	case uint64:
		if x > math.MaxInt64 {
			return Arg{err: fmt.Errorf("%w: %d overflows int64", ErrArgType, x)}
		}
		return Arg{lit: int64(x)}
	default:
		return Arg{err: fmt.Errorf("%w: %T (want an integer or Param)", ErrArgType, v)}
	}
}

// Pred is a predicate on one integer column: a comparison whose
// argument(s) fold into a half-open value range [lo, hi) when the
// query is compiled (for parameters, when the Stmt binds them).
// Predicates are combined conjunctively by Query.Where; several
// predicates on the same column intersect into one range.
//
// Because ranges are half-open over int64, a predicate can never match
// the value math.MaxInt64 itself; the engine's data generators and
// workloads never store it.
type Pred struct {
	kind plan.PredKind
	a, b Arg
	err  error
}

// pred assembles a Pred, recording the first bad argument.
func pred(kind plan.PredKind, a, b Arg) Pred {
	err := a.err
	if err == nil {
		err = b.err
	}
	return Pred{kind: kind, a: a, b: b, err: err}
}

// Between matches lo <= v < hi.
func Between(lo, hi any) Pred { return pred(plan.KindBetween, asArg(lo), asArg(hi)) }

// Eq matches v == x.
func Eq(x any) Pred { return pred(plan.KindEq, asArg(x), Arg{}) }

// Lt matches v < x.
func Lt(x any) Pred { return pred(plan.KindLt, asArg(x), Arg{}) }

// Le matches v <= x.
func Le(x any) Pred { return pred(plan.KindLe, asArg(x), Arg{}) }

// Gt matches v > x.
func Gt(x any) Pred { return pred(plan.KindGt, asArg(x), Arg{}) }

// Ge matches v >= x.
func Ge(x any) Pred { return pred(plan.KindGe, asArg(x), Arg{}) }

// Agg is an aggregate expression for Query.GroupBy. Build one with
// Sum, Count, Min or Max, and rename its output column with As.
type Agg struct {
	name string
	col  string
	kind exec.AggKind
}

// Sum aggregates the sum of col per group; the output column is named
// "sum_<col>".
func Sum(col string) Agg { return Agg{name: "sum_" + col, col: col, kind: exec.AggSum} }

// Count counts the rows of each group; the output column is named
// "count".
func Count() Agg { return Agg{name: "count", kind: exec.AggCount} }

// Min aggregates the minimum of col per group; the output column is
// named "min_<col>".
func Min(col string) Agg { return Agg{name: "min_" + col, col: col, kind: exec.AggMin} }

// Max aggregates the maximum of col per group; the output column is
// named "max_<col>".
func Max(col string) Agg { return Agg{name: "max_" + col, col: col, kind: exec.AggMax} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.name = name; return a }

// ErrUnknownColumn is returned (wrapped) when a query references a
// column the table does not have.
var ErrUnknownColumn = errors.New("smoothscan: no such column")

// ErrNotSelected is returned (wrapped) by Rows.Column when the column
// exists on the scanned table but the query's Select/GroupBy projected
// it away.
var ErrNotSelected = errors.New("smoothscan: column not in query output")

// ErrArgType is returned (wrapped) when a predicate constructor or
// Limit receives an argument that is neither an integer nor a Param.
var ErrArgType = errors.New("smoothscan: unsupported argument type")

// cond is one Where clause before compilation.
type cond struct {
	col string
	p   Pred
}

// joinClause is one Join call before compilation.
type joinClause struct {
	table    string
	leftCol  string
	rightCol string
	opts     ScanOptions
}

// Query is a composable query under construction. Build one with
// DB.Query, chain Where / Select / GroupBy / OrderBy / Limit /
// WithOptions, then call Run to execute it or Explain to inspect the
// plan the optimizer would choose. Builder methods record the first
// error and make Run/Explain return it, so call sites can chain
// without per-call checks.
//
// A Query is a plain value owned by its builder chain; it is not safe
// for concurrent use, but the Rows returned by Run is independent of
// it. Compilation reads table statistics at Run/Explain time, so the
// same Query re-run after Analyze may pick a different access path.
type Query struct {
	db       *DB
	table    string
	conds    []cond
	joins    []joinClause
	sel      []string
	hasSel   bool
	group    string
	aggs     []Agg
	hasAgg   bool
	order    string
	hasOrd   bool
	limitArg Arg
	hasLim   bool
	opts     ScanOptions
	// compat is set by the DB.Scan wrapper: it preserves the exact
	// pre-builder Scan semantics (no empty-range short-circuit, and a
	// missing index is an error rather than a full-scan fallback).
	compat bool
	err    error
}

// Query starts a composable query over the named table. The zero
// configuration scans every row with the default access path
// (Smooth Scan when the driving column has an index, full scan
// otherwise).
func (db *DB) Query(table string) *Query {
	return &Query{db: db, table: table}
}

// fail records the first builder error.
func (q *Query) fail(err error) *Query {
	if q.err == nil {
		q.err = err
	}
	return q
}

// Where adds a conjunctive predicate on a column. Multiple Where calls
// compose with AND; several predicates on the same column intersect
// into one range. The optimizer picks the most selective indexed
// predicate to drive the scan; the remaining conjuncts become residual
// predicates evaluated inside the page decode wherever the chosen
// access path supports it.
func (q *Query) Where(col string, p Pred) *Query {
	if p.err != nil {
		return q.fail(fmt.Errorf("Where(%q): %w", col, p.err))
	}
	q.conds = append(q.conds, cond{col: col, p: p})
	return q
}

// Join adds an inner equi-join with another table:
// left.leftCol = right.rightCol, where leftCol is a column of the
// query's output so far (the driving table, or any previously joined
// table) and rightCol is a column of the newly joined table. The
// output schema is the left columns followed by the right table's
// (colliding right column names get an "r." prefix).
//
// Where predicates may reference columns of any joined table — each
// conjunct is pushed beneath the join into the access path of the one
// table that has the column (ambiguous names are an error). Each
// input's access path is planned independently from its own
// predicates and ScanOptions — the adaptive Smooth Scan by default,
// any forced path or the cost-based optimizer (PathAuto) via
// JoinWithOptions — and the smaller estimated input lands on the hash
// build side. The first join runs as a merge join instead when both
// its base-table inputs already arrive ordered by their join columns
// (index scans, or Ordered smooth/sort scans driven by the join
// column); later stages of a chain always hash, since a join output's
// ordering is not tracked. The joined table's scan uses default
// ScanOptions; use JoinWithOptions to configure it.
func (q *Query) Join(table, leftCol, rightCol string) *Query {
	q.joins = append(q.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol})
	return q
}

// JoinWithOptions is Join with explicit ScanOptions for the joined
// table's access path (the builder-level WithOptions only configures
// the driving table).
func (q *Query) JoinWithOptions(table, leftCol, rightCol string, opts ScanOptions) *Query {
	q.joins = append(q.joins, joinClause{table: table, leftCol: leftCol, rightCol: rightCol, opts: opts})
	return q
}

// Select projects the output onto the named columns, in the given
// order. Without Select every table column is returned. When GroupBy
// is present, its group and aggregate columns are resolved against the
// selected columns.
func (q *Query) Select(cols ...string) *Query {
	if q.hasSel {
		return q.fail(fmt.Errorf("smoothscan: Select set twice"))
	}
	if len(cols) == 0 {
		return q.fail(fmt.Errorf("smoothscan: Select requires at least one column"))
	}
	q.sel = append([]string(nil), cols...)
	q.hasSel = true
	return q
}

// GroupBy groups rows by a column and computes the aggregates per
// group. The output schema is the group column followed by one column
// per aggregate, ordered by ascending group key.
func (q *Query) GroupBy(col string, aggs ...Agg) *Query {
	if q.hasAgg {
		return q.fail(fmt.Errorf("smoothscan: GroupBy set twice"))
	}
	if len(aggs) == 0 {
		return q.fail(fmt.Errorf("smoothscan: GroupBy requires at least one aggregate"))
	}
	q.group = col
	q.aggs = append([]Agg(nil), aggs...)
	q.hasAgg = true
	return q
}

// OrderBy orders the output by the named column, ascending. The
// column must be part of the query output. When the order is already
// delivered — by an order-preserving access path on the driving
// column, or by GroupBy's key-ordered output — no sort operator is
// added; otherwise a posterior (external) sort is.
func (q *Query) OrderBy(col string) *Query {
	if q.hasOrd {
		return q.fail(fmt.Errorf("smoothscan: OrderBy set twice"))
	}
	q.order = col
	q.hasOrd = true
	return q
}

// Limit caps the number of output rows; it accepts an integer or a
// Param placeholder. Limit(0) yields an empty result without touching
// the device.
func (q *Query) Limit(n any) *Query {
	a := asArg(n)
	if a.err != nil {
		return q.fail(fmt.Errorf("Limit: %w", a.err))
	}
	if a.param == "" && a.lit < 0 {
		return q.fail(fmt.Errorf("smoothscan: negative limit %d", a.lit))
	}
	q.limitArg = a
	q.hasLim = true
	return q
}

// WithOptions applies ScanOptions to the driving table access: access
// path, morphing policy and trigger, parallelism, cardinality
// estimate, SLA bound, Result Cache budget. The builder owns
// everything above the scan, the options configure the scan itself.
func (q *Query) WithOptions(opts ScanOptions) *Query {
	q.opts = opts
	return q
}

// resolvedPred is a bound predicate with its column name kept for plan
// rendering; loSrc/hiSrc name the parameters its bounds came from (""
// for literals) so Explain can render $name bind markers.
type resolvedPred struct {
	name         string
	pred         tuple.RangePred
	loSrc, hiSrc string
}

// render formats the predicate for plan details: the plain literal
// rendering when no bound came from a parameter, the $name-marked
// variant otherwise.
func (r resolvedPred) render() string {
	if r.loSrc == "" && r.hiSrc == "" {
		return fmtPred(r.name, r.pred)
	}
	return fmtPredMarked(r.name, r.pred, r.loSrc, r.hiSrc)
}

// tableAccess is one base table's compiled access: its predicates,
// the chosen access path, morphing configuration and parallelism —
// the per-input slice of what used to be the whole compiled query
// before joins made plans multi-input.
type tableAccess struct {
	tab        *table
	name       string
	base       *tuple.Schema
	driving    resolvedPred
	hasDriving bool // false: no predicates at all (pure full scan)
	residual   []resolvedPred
	path       AccessPath
	choice     *optimizer.Choice
	cfg        core.Config
	ordered    bool // scan-level ordered delivery
	par        int
	estDriving int64
	estScan    int64 // after residual conjuncts
	pushed     bool  // residual evaluated inside the scan
	emptyWhy   string
}

// residualPreds extracts the bare predicates.
func (a *tableAccess) residualPreds() []tuple.RangePred {
	if len(a.residual) == 0 {
		return nil
	}
	out := make([]tuple.RangePred, len(a.residual))
	for i, r := range a.residual {
		out[i] = r.pred
	}
	return out
}

// deliversOrderOn reports whether the access emits rows ordered by the
// given base-schema column: the column must drive the scan and the
// path must preserve index-key order (index scans always do; smooth
// and sort scans do when their ordered variant was chosen).
func (a *tableAccess) deliversOrderOn(col int) bool {
	if a.driving.pred.Col != col {
		return false
	}
	switch a.path {
	case PathIndex:
		return true
	case PathSmooth, PathSort:
		return a.ordered
	}
	return false
}

// joinStage is one compiled equi-join of the left-deep join tree:
// stage k joins the output of everything before it with inputs[k+1].
type joinStage struct {
	leftCol   int // in the accumulated left schema
	rightCol  int // in the right input's base schema
	leftName  string
	rightName string
	algo      plan.JoinAlgo
	buildLeft bool
	estRows   int64
}

// compiledQuery is the outcome of planning: everything needed to build
// the operator tree or render the Explain plan.
type compiledQuery struct {
	inputs   []*tableAccess // left-deep; inputs[0] is the driving table
	joins    []*joinStage   // len(inputs)-1 stages
	base     *tuple.Schema  // joined row schema (inputs[0].base when no joins)
	emptyWhy string         // non-empty: plan short-circuits to an empty result

	selIdx    []int
	selSchema *tuple.Schema

	groupIdx  int // in selSchema; -1 = no grouping
	aggSpecs  []exec.AggSpec
	aggSchema *tuple.Schema

	orderIdx int // in the pre-sort schema; -1 = no ordering
	needSort bool
	orderVia string // "", "scan" (native order) or "group" (agg key order)

	limit  int64
	hasLim bool

	out *tuple.Schema

	// planCached reports whether the structural template came from the
	// DB-wide plan cache (or a prepared Stmt) instead of a fresh
	// template compilation; surfaced via ExecStats.PlanCacheHit.
	planCached bool
	// annotate marks prepared-statement executions: plan() then renders
	// the bound parameter values (binds) and the estimate-sensitive
	// decisions re-made at bind time. The strings are built lazily in
	// plan() — Run never pays Explain-only formatting — and stay empty
	// for ad-hoc queries so their Explain output is byte-identical to
	// the pre-prepared-statement engine.
	annotate bool
	binds    []bindPair

	// degraded records the fault-recovery fallbacks applied to this
	// plan, one human-readable note per ladder step (see
	// degradeOnFault); empty for a plan that ran as compiled. Surfaced
	// via ExecStats.Degraded and the Explain header.
	degraded []string

	// Result-cache tier fields (see rescache.go). resKey is the
	// execution's entry key — canonical shape plus every resolved
	// constant — and resEpochs the write epochs of the referenced
	// tables captured at bind time; both empty when the execution does
	// not participate (tier disabled, compat query, empty plan).
	// cacheServed marks an execution answered from the cache, rendered
	// by Plan as "served from result cache".
	resKey      string
	resEpochs   map[string]uint64
	cacheServed bool
}

// bindPair is one bound parameter captured at bind time (the caller's
// Bind map may be reused or mutated after Run returns; this snapshot
// may not).
type bindPair struct {
	name string
	val  int64
}

// driving returns the first (driving-table) input.
func (cq *compiledQuery) driving() *tableAccess { return cq.inputs[0] }

// estRoot is the cardinality estimate of the scan/join tree before
// projection and aggregation.
func (cq *compiledQuery) estRoot() int64 {
	if n := len(cq.joins); n > 0 {
		return cq.joins[n-1].estRows
	}
	return cq.driving().estScan
}

// bindAccess plans one base table's access at bind time, from its
// already-folded per-column predicates and ScanOptions: it re-decides
// everything estimate-sensitive — the driving conjunct among the
// indexed ones, the access path (for PathAuto), the parallelism clamp
// — from the table's current statistics, with zero device I/O.
// orderCol, when non-empty, names a column whose order the plan could
// use for free if it happens to drive an order-preserving path (the
// free-ORDER-BY case); compat preserves the historical DB.Scan
// strictness.
func bindAccess(db *DB, name string, t *table, merged []resolvedPred, opts ScanOptions, orderCol string, compat bool) (*tableAccess, error) {
	a := &tableAccess{tab: t, name: name, base: t.file.Schema()}
	if opts.MaxRegionPages == 0 {
		opts.MaxRegionPages = core.DefaultMaxRegionPages
	}
	if !compat {
		for _, m := range merged {
			if m.pred.Empty() {
				a.emptyWhy = fmt.Sprintf("predicates on %q are contradictory", m.name)
			}
		}
	}

	params := db.costParams(t)
	stats := t.stats
	if stats == nil {
		stats = optimizer.DefaultStats(t.file.NumTuples(), t.file.NumPages(), nil)
	}

	// Driving-predicate selection: the most selective indexed conjunct
	// (by the optimizer's cardinality estimate) drives the access path;
	// everything else is residual.
	drivingAt := -1
	if compat {
		drivingAt = 0 // exactly one predicate by construction
	} else {
		bestCard := int64(math.MaxInt64)
		for i, m := range merged {
			if _, ok := t.indexes[m.name]; !ok {
				continue
			}
			if card := stats.EstimateCard(m.pred); card < bestCard {
				bestCard, drivingAt = card, i
			}
		}
		if drivingAt < 0 && len(merged) > 0 {
			drivingAt = 0 // no indexed conjunct: full scan driven by the first
		}
	}
	if drivingAt >= 0 {
		a.driving = merged[drivingAt]
		a.hasDriving = true
		for i, m := range merged {
			if i != drivingAt {
				a.residual = append(a.residual, m)
			}
		}
	} else {
		a.driving = resolvedPred{name: a.base.Col(0).Name, pred: tuple.All(0)}
	}
	_, hasIndex := t.indexes[a.driving.name]

	// Cardinality estimates (independence assumption across conjuncts).
	a.estDriving = opts.EstimatedRows
	if a.estDriving == 0 {
		a.estDriving = stats.EstimateCard(a.driving.pred)
	}
	sel := 1.0
	for _, r := range a.residual {
		sel *= stats.EstimateSelectivity(r.pred)
	}
	a.estScan = int64(math.Round(float64(a.estDriving) * sel))

	// Does the caller want output in this column's order? Then an
	// order-preserving access path driven by it satisfies the ORDER BY
	// for free — the optimizer weighs the posterior sort against that.
	wantScanOrder := orderCol != "" && a.hasDriving && orderCol == a.driving.name
	ordered := opts.Ordered || wantScanOrder

	// Access-path resolution.
	path := opts.Path
	if path == PathAuto {
		if !a.hasDriving {
			path = PathFull
		} else {
			choice := optimizer.ChooseAccessPath(params, stats, a.driving.pred, hasIndex, opts.Ordered || wantScanOrder)
			a.choice = &choice
			switch choice.Path {
			case optimizer.PathFullScan:
				path = PathFull
			case optimizer.PathIndexScan:
				path = PathIndex
			case optimizer.PathSortScan:
				path = PathSort
			}
			a.estDriving = choice.EstimatedCard
			a.estScan = int64(math.Round(float64(a.estDriving) * sel))
		}
	}
	switch path {
	case PathSmooth, PathIndex, PathSort, PathSwitch:
		if !hasIndex {
			if path == PathSmooth && !compat {
				// The builder's default path is PathSmooth; without an
				// index on the driving column it degrades gracefully to
				// a full scan instead of failing, so predicate-less and
				// unindexed queries still run. DB.Scan keeps the strict
				// historical behaviour.
				path = PathFull
			} else {
				return nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, name, a.driving.name)
			}
		}
	case PathFull:
	default:
		return nil, fmt.Errorf("smoothscan: unknown access path %d", opts.Path)
	}
	if opts.Ordered {
		// Explicit scan-level ordering keeps the historical contract:
		// paths that cannot deliver it refuse, rather than silently
		// sorting. Use OrderBy for a plan-level ordering that falls
		// back to a posterior sort.
		switch path {
		case PathFull:
			return nil, fmt.Errorf("smoothscan: full scan cannot deliver ordered output; add an explicit sort")
		case PathSwitch:
			return nil, fmt.Errorf("smoothscan: switch scan cannot guarantee ordered output")
		}
	}
	nativeOrder := ordered && (path == PathSmooth || path == PathIndex || path == PathSort)
	a.ordered = nativeOrder
	a.path = path

	par := opts.Parallelism
	if par > MaxParallelism {
		par = MaxParallelism
	}
	if int64(par) > t.file.NumPages() {
		par = int(t.file.NumPages())
	}
	if par > 1 && (path == PathSmooth || path == PathFull) {
		a.par = par
	} else {
		a.par = 1
	}

	a.cfg = core.Config{
		Policy:            opts.Policy,
		Trigger:           opts.Trigger,
		Ordered:           nativeOrder,
		MaxRegionPages:    opts.MaxRegionPages,
		EstimatedCard:     a.estDriving,
		SLABound:          opts.SLABound,
		CostParams:        params,
		ResultCacheBudget: opts.ResultCacheBudget,
	}
	a.pushed = len(a.residual) > 0 &&
		(path == PathFull || (path == PathSmooth && !nativeOrder))
	return a, nil
}

// joinOutputSchema computes the join's output schema — the same
// tuple.Schema concatenation the join operators apply at run time
// ("r." prefix on right columns shadowed by the left) — turning a
// still-colliding name into a compile-time error instead of a panic.
func joinOutputSchema(left, right *tuple.Schema) (*tuple.Schema, error) {
	s, err := left.ConcatChecked(right)
	if err != nil {
		return nil, fmt.Errorf("smoothscan: join output schema: %w (rename columns or reorder joins)", err)
	}
	return s, nil
}

// estJoinRows estimates an equi-join's output cardinality assuming
// the right join column is key-like: |L| x |R| / |right table|,
// floored at one row when both inputs are non-empty.
func estJoinRows(estL, estR, rightTableRows int64) int64 {
	if estL <= 0 || estR <= 0 {
		return 0
	}
	if rightTableRows <= 0 {
		return estL
	}
	est := int64(math.Round(float64(estL) * float64(estR) / float64(rightTableRows)))
	if est < 1 {
		est = 1
	}
	return est
}

// qtemplate is a query's compiled template: the structural
// plan.Template plus the facade-level configuration that rides along
// with the shape (per-input ScanOptions, DB.Scan compat). It is
// immutable once built and shared freely — by the DB-wide plan cache,
// and by every execution of a prepared Stmt.
type qtemplate struct {
	pt      *plan.Template
	optsPer []ScanOptions
	compat  bool
	// key is the canonical shape the template was compiled from — the
	// same string the plan cache indexes by. It distinguishes named
	// parameters from literal slots, because the bind phase resolves
	// them differently. Empty when neither cache wants it.
	key string
	// semKey is the parameter-blind canonical shape: every constant —
	// literal or named parameter — renders as the same positional
	// marker. The result-cache tier derives its entry keys from it
	// (shape + resolved constant values in canonical argument order),
	// which is what lets ad-hoc and prepared executions of the same
	// query share one entry. Empty alongside key.
	semKey string
}

// canonPred returns the predicate in canonical constant form: a
// parameter-free predicate folds into its half-open Between range
// right here, so Eq(5) and Between(5, 6) canonicalise to the same
// shape and share one cached template; a parameterized predicate
// keeps its comparison kind for bind-time folding.
func canonPred(p Pred) (kind plan.PredKind, a, b Arg) {
	if p.a.param == "" && (p.kind != plan.KindBetween || p.b.param == "") {
		lo, hi := plan.FoldRange(p.kind, p.a.lit, p.b.lit)
		return plan.KindBetween, Arg{lit: lo}, Arg{lit: hi}
	}
	return p.kind, p.a, p.b
}

// forEachArg visits every bind-time argument of the query in canonical
// order: the Where conjuncts in call order (canonical form, lo then hi
// for Between), then the Limit count. canonicalKey serialises
// arguments in this order and buildTemplate assigns literal slots in
// this order — the three walks must never diverge, or a cached
// template would bind another query's literals to the wrong
// predicates.
func (q *Query) forEachArg(f func(a Arg)) {
	for _, c := range q.conds {
		kind, a, b := canonPred(c.p)
		f(a)
		if kind == plan.KindBetween {
			f(b)
		}
	}
	if q.hasLim {
		f(q.limitArg)
	}
}

// collectLits extracts the query's literal argument values, in slot
// order.
func (q *Query) collectLits() []int64 {
	var lits []int64
	q.forEachArg(func(a Arg) {
		if a.param == "" {
			lits = append(lits, a.lit)
		}
	})
	return lits
}

// canonicalKey serialises the query's structure — tables, joins,
// conjunct columns and comparison kinds, projection, grouping,
// ordering, options — with every literal constant replaced by a
// positional marker. Two queries with the same key compile to the
// same template and differ only in the literal vector they bind, which
// is exactly what makes the DB-wide plan cache safe. Named parameters
// keep their names (the bind phase resolves them by name, not
// position), so a prepared query and its literal twin get distinct
// plan-cache keys.
func (q *Query) canonicalKey() string { return q.structKey(false) }

// semanticKey is canonicalKey with the parameter/literal distinction
// erased: every constant renders as the same positional marker. Two
// queries with the same semantic key and the same resolved constant
// vector compute the same result, whichever mix of literals and
// parameters expressed it — the property the result-cache tier keys
// on.
func (q *Query) semanticKey() string { return q.structKey(true) }

func (q *Query) structKey(blind bool) string {
	var sb strings.Builder
	arg := func(a Arg) {
		if a.param != "" && !blind {
			sb.WriteByte('$')
			sb.WriteString(a.param)
		} else {
			sb.WriteByte('?')
		}
	}
	sb.WriteString("v1|")
	if q.compat {
		sb.WriteString("compat|")
	}
	fmt.Fprintf(&sb, "%q", q.table)
	for _, j := range q.joins {
		fmt.Fprintf(&sb, "|J:%q,%q,%q,%+v", j.table, j.leftCol, j.rightCol, j.opts)
	}
	for _, c := range q.conds {
		kind, a, b := canonPred(c.p)
		if blind {
			// Every predicate folds to a half-open [lo, hi) range at
			// bind time, so the semantic shape of any conjunct is a
			// two-endpoint Between regardless of which comparison
			// spelled it — Eq(x) and Between(x, x+1) must share.
			fmt.Fprintf(&sb, "|W:%q,%d,?,?", c.col, int(plan.KindBetween))
			continue
		}
		fmt.Fprintf(&sb, "|W:%q,%d,", c.col, int(kind))
		arg(a)
		if kind == plan.KindBetween {
			sb.WriteByte(',')
			arg(b)
		}
	}
	if q.hasSel {
		sb.WriteString("|S:")
		for i, s := range q.sel {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%q", s)
		}
	}
	if q.hasAgg {
		fmt.Fprintf(&sb, "|G:%q", q.group)
		for _, a := range q.aggs {
			fmt.Fprintf(&sb, ",%q:%q:%d", a.name, a.col, int(a.kind))
		}
	}
	if q.hasOrd {
		fmt.Fprintf(&sb, "|O:%q", q.order)
	}
	if q.hasLim {
		sb.WriteString("|L:")
		arg(q.limitArg)
	}
	fmt.Fprintf(&sb, "|opts:%+v", q.opts)
	return sb.String()
}

// buildTemplate runs the structural (prepare) phase: table and column
// resolution, conjunct routing, join tree shape, projection / grouping
// / ordering schemas — everything about the query that does not depend
// on its constant values. The caller holds db.mu (read). The result is
// immutable; bindTemplate turns it into an executable compiledQuery
// per execution.
func (q *Query) buildTemplate() (*qtemplate, error) {
	if q.err != nil {
		return nil, q.err
	}
	db := q.db
	pt := &plan.Template{GroupIdx: -1, OrderIdx: -1}

	// Resolve every input table.
	names := []string{q.table}
	optsPer := []ScanOptions{q.opts}
	for _, j := range q.joins {
		names = append(names, j.table)
		optsPer = append(optsPer, j.opts)
	}
	tabs := make([]*table, len(names))
	for i, name := range names {
		t, err := db.tableLocked(name)
		if err != nil {
			return nil, err
		}
		tabs[i] = t
	}

	// Assign bind-time Values in canonical argument order (see
	// forEachArg): literals take positional slots, parameters are
	// registered by name.
	slots := 0
	seen := map[string]bool{}
	val := func(a Arg) plan.Value {
		if a.param != "" {
			if !seen[a.param] {
				seen[a.param] = true
				pt.Params = append(pt.Params, a.param)
			}
			return plan.Value{Param: a.param}
		}
		v := plan.Value{Slot: slots}
		slots++
		return v
	}
	condKinds := make([]plan.PredKind, len(q.conds))
	condVals := make([][2]plan.Value, len(q.conds))
	for ci, c := range q.conds {
		kind, a, b := canonPred(c.p)
		condKinds[ci] = kind
		condVals[ci][0] = val(a)
		if kind == plan.KindBetween {
			condVals[ci][1] = val(b)
		}
	}

	// Distribute the Where conjuncts: each predicate is pushed beneath
	// the joins into the one input whose schema has the column, and
	// grouped per column (first-mention order) for bind-time
	// intersection.
	pt.Inputs = make([]plan.AccessT, len(names))
	byColPer := make([]map[string]int, len(names))
	for i := range names {
		pt.Inputs[i] = plan.AccessT{Table: names[i], Schema: tabs[i].file.Schema()}
		byColPer[i] = map[string]int{}
	}
	for ci, c := range q.conds {
		at := -1
		for i, t := range tabs {
			if t.file.Schema().ColIndex(c.col) < 0 {
				continue
			}
			if at >= 0 {
				return nil, fmt.Errorf("smoothscan: Where column %q is ambiguous between tables %q and %q", c.col, names[at], names[i])
			}
			at = i
		}
		if at < 0 {
			if len(names) == 1 {
				return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, c.col)
			}
			return nil, fmt.Errorf("%w: no joined table has column %q", ErrUnknownColumn, c.col)
		}
		in := &pt.Inputs[at]
		ct := plan.CondT{
			Col:  in.Schema.ColIndex(c.col),
			Name: c.col,
			Kind: condKinds[ci],
			A:    condVals[ci][0],
			B:    condVals[ci][1],
		}
		idx := len(in.Conds)
		in.Conds = append(in.Conds, ct)
		if g, ok := byColPer[at][c.col]; ok {
			in.Merged[g] = append(in.Merged[g], idx)
		} else {
			byColPer[at][c.col] = len(in.Merged)
			in.Merged = append(in.Merged, []int{idx})
		}
	}

	// Only the driving table of a join-free query can satisfy an ORDER
	// BY through an order-preserving scan; joins and grouping reorder.
	if len(q.joins) == 0 && q.hasOrd && !q.hasAgg {
		pt.FreeOrderCol = q.order
	}

	// Join stages: resolve the equi-join columns and precompute each
	// stage's output schema. Algorithm and build side are bind-time.
	base := pt.Inputs[0].Schema
	for k, jc := range q.joins {
		right := &pt.Inputs[k+1]
		leftCol := base.ColIndex(jc.leftCol)
		if leftCol < 0 {
			return nil, fmt.Errorf("%w: join %d: %q is not a column of the query output joined so far", ErrUnknownColumn, k+1, jc.leftCol)
		}
		rightCol := right.Schema.ColIndex(jc.rightCol)
		if rightCol < 0 {
			return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, right.Table, jc.rightCol)
		}
		joined, err := joinOutputSchema(base, right.Schema)
		if err != nil {
			return nil, err
		}
		pt.Joins = append(pt.Joins, plan.JoinT{
			LeftCol:   leftCol,
			RightCol:  rightCol,
			LeftName:  base.Col(leftCol).Name,
			RightName: right.Schema.Col(rightCol).Name,
			Joined:    joined,
		})
		base = joined
	}
	pt.Base = base

	// SELECT list.
	pt.SelSchema = pt.Base
	if q.hasSel {
		cols := make([]tuple.Column, len(q.sel))
		pt.SelIdx = make([]int, len(q.sel))
		for i, name := range q.sel {
			col := pt.Base.ColIndex(name)
			if col < 0 {
				if len(pt.Inputs) == 1 {
					return nil, fmt.Errorf("%w: table %q has no column %q", ErrUnknownColumn, q.table, name)
				}
				return nil, fmt.Errorf("%w: join output has no column %q", ErrUnknownColumn, name)
			}
			pt.SelIdx[i] = col
			cols[i] = pt.Base.Col(col)
		}
		s, err := tuple.NewSchema(cols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: Select: %w", err)
		}
		pt.SelSchema = s
	}

	// GROUP BY + aggregates.
	stage := pt.SelSchema
	if q.hasAgg {
		pt.GroupIdx = pt.SelSchema.ColIndex(q.group)
		if pt.GroupIdx < 0 {
			return nil, templColErr(pt, q.group, "GroupBy")
		}
		outNames := map[string]bool{q.group: true}
		outCols := []tuple.Column{{Name: q.group, Type: tuple.Int64}}
		for _, a := range q.aggs {
			spec := exec.AggSpec{Name: a.name, Kind: a.kind}
			if a.kind != exec.AggCount {
				spec.Col = pt.SelSchema.ColIndex(a.col)
				if spec.Col < 0 {
					return nil, templColErr(pt, a.col, "aggregate")
				}
			}
			if outNames[a.name] {
				return nil, fmt.Errorf("smoothscan: duplicate output column %q in GroupBy", a.name)
			}
			outNames[a.name] = true
			pt.AggSpecs = append(pt.AggSpecs, spec)
			outCols = append(outCols, tuple.Column{Name: a.name, Type: tuple.Int64})
		}
		s, err := tuple.NewSchema(outCols...)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: GroupBy: %w", err)
		}
		pt.AggSchema = s
		stage = s
	}

	// ORDER BY resolution (sort-vs-free decisions are bind-time).
	if q.hasOrd {
		pt.OrderIdx = stage.ColIndex(q.order)
		if pt.OrderIdx < 0 {
			return nil, fmt.Errorf("%w: %q is not in the query output; add it to Select or GroupBy", ErrUnknownColumn, q.order)
		}
		pt.OrderName = q.order
	}

	pt.HasLim = q.hasLim
	if q.hasLim {
		pt.Limit = val(q.limitArg)
	}
	pt.Out = stage
	pt.Slots = slots
	return &qtemplate{pt: pt, optsPer: optsPer, compat: q.compat}, nil
}

// templateFor returns the query's compiled template together with its
// literal vector, consulting the DB-wide plan cache: an ad-hoc query
// whose canonical shape was compiled before reuses that template and
// pays only the bind phase. The caller holds db.mu (read).
func (db *DB) templateFor(q *Query) (qt *qtemplate, lits []int64, hit bool, err error) {
	if q.err != nil {
		return nil, nil, false, q.err
	}
	if db.planCache == nil {
		qt, err = q.buildTemplate()
		if err != nil {
			return nil, nil, false, err
		}
		if db.resCache != nil {
			// No plan cache to need the key, but the result cache does.
			qt.key = q.canonicalKey()
			qt.semKey = q.semanticKey()
		}
		return qt, q.collectLits(), false, nil
	}
	key := q.canonicalKey()
	if v, ok := db.planCache.Get(key); ok {
		return v.(*qtemplate), q.collectLits(), true, nil
	}
	qt, err = q.buildTemplate()
	if err != nil {
		return nil, nil, false, err
	}
	qt.key = key
	qt.semKey = q.semanticKey()
	db.planCache.Put(key, qt)
	return qt, q.collectLits(), false, nil
}

// templColErr distinguishes "no such column" from "column projected
// away" for GroupBy/aggregate resolution against a template.
func templColErr(pt *plan.Template, col, what string) error {
	if pt.Base.ColIndex(col) >= 0 {
		return fmt.Errorf("%w: %s column %q was projected away by Select", ErrNotSelected, what, col)
	}
	if len(pt.Inputs) == 1 {
		return fmt.Errorf("%w: table %q has no column %q (%s)", ErrUnknownColumn, pt.Inputs[0].Table, col, what)
	}
	return fmt.Errorf("%w: join output has no column %q (%s)", ErrUnknownColumn, col, what)
}

// resolveValue turns a template Value into a scalar: a literal slot
// reads the execution's literal vector, a parameter reads the bind
// set. The second return names the parameter ("" for literals) for
// Explain's bind markers.
func resolveValue(v plan.Value, lits []int64, b Bind) (int64, string, error) {
	if v.Param != "" {
		x, ok := b[v.Param]
		if !ok {
			return 0, "", fmt.Errorf("%w: $%s", ErrUnboundParam, v.Param)
		}
		return x, v.Param, nil
	}
	return lits[v.Slot], "", nil
}

// foldGroup folds one column's conjuncts into a single range: each
// conjunct's bound scalars fold through its comparison kind, and the
// ranges intersect in Where order — exactly what the eager literal
// constructors plus Intersect used to compute. The parameter sources
// of the binding bounds survive for plan rendering.
func foldGroup(at *plan.AccessT, group []int, lits []int64, b Bind) (resolvedPred, error) {
	var out resolvedPred
	for gi, ci := range group {
		c := at.Conds[ci]
		aVal, aSrc, err := resolveValue(c.A, lits, b)
		if err != nil {
			return out, err
		}
		var bVal int64
		var bSrc string
		if c.Kind == plan.KindBetween {
			bVal, bSrc, err = resolveValue(c.B, lits, b)
			if err != nil {
				return out, err
			}
		}
		lo, hi := plan.FoldRange(c.Kind, aVal, bVal)
		var loSrc, hiSrc string
		switch c.Kind {
		case plan.KindBetween:
			loSrc, hiSrc = aSrc, bSrc
		case plan.KindEq:
			loSrc, hiSrc = aSrc, aSrc
		case plan.KindLt, plan.KindLe:
			hiSrc = aSrc
		case plan.KindGt, plan.KindGe:
			loSrc = aSrc
		}
		rp := tuple.RangePred{Col: c.Col, Lo: lo, Hi: hi}
		if gi == 0 {
			out = resolvedPred{name: c.Name, pred: rp, loSrc: loSrc, hiSrc: hiSrc}
			continue
		}
		if rp.Lo > out.pred.Lo {
			out.loSrc = loSrc
		}
		if rp.Hi < out.pred.Hi {
			out.hiSrc = hiSrc
		}
		out.pred = out.pred.Intersect(rp)
	}
	return out, nil
}

// bindTemplate runs the bind (execute-side) phase: substitute the
// constants into the template and re-decide everything
// estimate-sensitive — driving conjunct, access path, join algorithm
// and build side, parallelism — from the tables' current statistics.
// It allocates a fresh compiledQuery per call (templates are shared
// across goroutines, bindings are not) and touches no device state.
// annotate enables the prepared-statement Explain extras (bind markers
// and re-planned-at-bind notes). The caller holds db.mu (read).
func (db *DB) bindTemplate(qt *qtemplate, lits []int64, b Bind, annotate bool) (*compiledQuery, error) {
	pt := qt.pt
	if len(lits) != pt.Slots {
		return nil, fmt.Errorf("smoothscan: internal: %d literals for a %d-slot template", len(lits), pt.Slots)
	}
	cq := &compiledQuery{groupIdx: -1, orderIdx: -1}

	cq.inputs = make([]*tableAccess, len(pt.Inputs))
	for i := range pt.Inputs {
		at := &pt.Inputs[i]
		t, err := db.tableLocked(at.Table)
		if err != nil {
			return nil, err
		}
		merged := make([]resolvedPred, len(at.Merged))
		for g, group := range at.Merged {
			if merged[g], err = foldGroup(at, group, lits, b); err != nil {
				return nil, err
			}
		}
		orderCol := ""
		if i == 0 {
			orderCol = pt.FreeOrderCol
		}
		a, err := bindAccess(db, at.Table, t, merged, qt.optsPer[i], orderCol, qt.compat)
		if err != nil {
			return nil, err
		}
		if a.emptyWhy != "" && cq.emptyWhy == "" {
			cq.emptyWhy = a.emptyWhy
		}
		cq.inputs[i] = a
	}

	if pt.HasLim {
		n, src, err := resolveValue(pt.Limit, lits, b)
		if err != nil {
			return nil, err
		}
		if n < 0 {
			return nil, fmt.Errorf("smoothscan: negative limit %d bound from $%s", n, src)
		}
		cq.limit, cq.hasLim = n, true
	}
	if !qt.compat && cq.hasLim && cq.limit == 0 {
		cq.emptyWhy = "LIMIT 0"
	}

	// Join stages: pick the algorithm (merge when both inputs already
	// arrive ordered by their join columns, hash otherwise) and the
	// hash build side (the smaller estimated input).
	cq.base = cq.inputs[0].base
	estLeft := cq.inputs[0].estScan
	for k := range pt.Joins {
		jt := &pt.Joins[k]
		right := cq.inputs[k+1]
		st := &joinStage{
			leftCol:   jt.LeftCol,
			rightCol:  jt.RightCol,
			leftName:  jt.LeftName,
			rightName: jt.RightName,
		}
		if k == 0 && cq.inputs[0].deliversOrderOn(jt.LeftCol) && right.deliversOrderOn(jt.RightCol) {
			st.algo = plan.JoinMerge
		} else {
			st.algo = plan.JoinHash
			st.buildLeft = estLeft < right.estScan
		}
		st.estRows = estJoinRows(estLeft, right.estScan, right.tab.file.NumTuples())
		cq.base = jt.Joined
		estLeft = st.estRows
		cq.joins = append(cq.joins, st)
	}

	cq.selIdx = pt.SelIdx
	cq.selSchema = pt.SelSchema
	cq.groupIdx = pt.GroupIdx
	cq.aggSpecs = pt.AggSpecs
	cq.aggSchema = pt.AggSchema
	cq.out = pt.Out

	// ORDER BY: decide whether the order comes for free (from the
	// bind-chosen driving scan, or the aggregation's key order) or
	// needs a posterior sort.
	if pt.OrderIdx >= 0 {
		cq.orderIdx = pt.OrderIdx
		switch {
		case pt.GroupIdx >= 0 && pt.OrderName == pt.AggSchema.Col(0).Name:
			cq.orderVia = "group" // HashAgg emits ascending group keys
		case len(cq.joins) == 0 && cq.driving().ordered && pt.GroupIdx < 0 && pt.OrderName == cq.driving().driving.name:
			cq.orderVia = "scan"
		default:
			cq.needSort = true
		}
	}

	if annotate {
		cq.annotate = true
		if len(b) > 0 {
			cq.binds = make([]bindPair, 0, len(b))
			for name, val := range b {
				cq.binds = append(cq.binds, bindPair{name: name, val: val})
			}
		}
	}

	// Result-cache tier: derive the entry key (parameter-blind
	// canonical shape + every constant resolved to its bound value, in
	// the template's canonical walk order) and capture the referenced
	// tables' write epochs under the same lock the execution will run
	// under. Resolving parameters to their values before keying is
	// what lets an ad-hoc query with inline literals and a prepared
	// statement bound to the same values share one entry. Compat
	// (DB.Scan) queries and empty-plan short-circuits stay out: the
	// former pins historical device behaviour, the latter already costs
	// zero I/O.
	if db.resCache != nil && qt.semKey != "" && !qt.compat && cq.emptyWhy == "" {
		var sb strings.Builder
		sb.WriteString(qt.semKey)
		sb.WriteString("#v:")
		resolve := func(v plan.Value) int64 {
			if v.Param != "" {
				return b[v.Param]
			}
			return lits[v.Slot]
		}
		for _, in := range pt.Inputs {
			for _, c := range in.Conds {
				// Serialise the folded half-open range, not the raw
				// scalars: ad-hoc predicates folded at prepare time
				// (canonPred) and parameterized ones folding here must
				// produce the same vector.
				var bv int64
				if c.Kind == plan.KindBetween {
					bv = resolve(c.B)
				}
				lo, hi := plan.FoldRange(c.Kind, resolve(c.A), bv)
				fmt.Fprintf(&sb, "%d,%d,", lo, hi)
			}
		}
		if pt.HasLim {
			fmt.Fprintf(&sb, "L%d,", resolve(pt.Limit))
		}
		cq.resKey = sb.String()
		cq.resEpochs = make(map[string]uint64, len(cq.inputs))
		for _, a := range cq.inputs {
			cq.resEpochs[a.name] = a.tab.epoch
		}
	}
	return cq, nil
}

// renderBinds formats the captured bind snapshot for plan headers,
// sorted by name.
func renderBinds(pairs []bindPair) []string {
	if len(pairs) == 0 {
		return nil
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].name < pairs[j].name })
	out := make([]string, len(pairs))
	for i, p := range pairs {
		out[i] = fmt.Sprintf("$%s=%d", p.name, p.val)
	}
	return out
}

// renderBindNotes lists the estimate-sensitive decisions the bind
// phase just re-made: the driving conjunct wherever more than one was
// in play, the optimizer's access-path pick, the parallelism clamp,
// and each join's algorithm and build side.
func (cq *compiledQuery) renderBindNotes() []string {
	var notes []string
	for _, a := range cq.inputs {
		if a.hasDriving && len(a.residual) > 0 {
			notes = append(notes, fmt.Sprintf("driving(%s)=%s", a.name, a.driving.name))
		}
		if a.choice != nil {
			notes = append(notes, fmt.Sprintf("path(%s)=%s", a.name, a.path))
		}
		if a.par > 1 {
			notes = append(notes, fmt.Sprintf("parallel(%s)=%d", a.name, a.par))
		}
	}
	for k, st := range cq.joins {
		if st.algo == plan.JoinMerge {
			notes = append(notes, fmt.Sprintf("join#%d=merge", k+1))
			continue
		}
		build := cq.inputs[k+1].name
		if st.buildLeft {
			build = "left"
		}
		notes = append(notes, fmt.Sprintf("join#%d=hash(build=%s)", k+1, build))
	}
	return notes
}

// compile plans an ad-hoc query: fetch or build the structural
// template (via the DB-wide plan cache), then bind the query's own
// literals — the same prepare → bind pipeline a Stmt uses, which is
// what keeps ad-hoc and prepared execution value-for-value identical.
// The caller holds db.mu (read).
func (q *Query) compile() (*compiledQuery, error) {
	qt, lits, hit, err := q.db.templateFor(q)
	if err != nil {
		return nil, err
	}
	cq, err := q.db.bindTemplate(qt, lits, nil, false)
	if err != nil {
		return nil, err
	}
	cq.planCached = hit
	return cq, nil
}

// builtQuery is the executable outcome of build: the root operator
// plus the handles ExecStats reads (the driving table's Smooth Scan
// operator(s), the join operators, the per-stage counters).
type builtQuery struct {
	root     exec.Operator
	smooth   *core.SmoothScan
	workers  []*core.SmoothScan
	joins    []exec.JoinStatser
	counters []*opCounter
}

// buildInput constructs one table access through the plan layer,
// wrapped in its counter, context guard and (when the access path
// could not absorb the residual conjuncts) a filter operator.
func (cq *compiledQuery) buildInput(db *DB, ctx context.Context, a *tableAccess, bq *builtQuery, count func(string, exec.Operator) exec.Operator) (exec.Operator, error) {
	spec := plan.ScanSpec{
		File:            a.tab.file,
		Pool:            db.pool,
		Pred:            a.driving.pred,
		Residual:        a.residualPreds(),
		Smooth:          a.cfg,
		Ordered:         a.ordered,
		SwitchThreshold: a.estDriving,
		Parallelism:     a.par,
		Ctx:             ctx,
	}
	if tree, ok := a.tab.indexes[a.driving.name]; ok {
		spec.Tree = tree
	}
	switch a.path {
	case PathSmooth:
		spec.Path = plan.PathSmooth
	case PathFull:
		spec.Path = plan.PathFull
	case PathIndex:
		spec.Path = plan.PathIndex
	case PathSort:
		spec.Path = plan.PathSort
	case PathSwitch:
		spec.Path = plan.PathSwitch
	}
	built, err := plan.Build(spec)
	if err != nil {
		if errors.Is(err, plan.ErrNeedsIndex) {
			return nil, fmt.Errorf("%w: %q.%q", ErrNoIndex, a.name, a.driving.name)
		}
		return nil, err
	}
	if a == cq.driving() {
		bq.smooth = built.Smooth
		bq.workers = built.Workers
	}

	// Counter names keep the historical single-table form ("smooth",
	// "filter"); multi-input plans qualify them with the table.
	multi := len(cq.inputs) > 1
	scanName := a.path.String()
	if multi {
		scanName = fmt.Sprintf("%s(%s)", a.path, a.name)
	}
	if a.par > 1 {
		scanName = fmt.Sprintf("parallel[%d] %s", a.par, scanName)
	}
	cur := count(scanName, built.Op)
	if ctx != nil {
		// Each input gets its own guard, so a blocking consumer (a
		// hash-join build, a sort) observes cancellation per batch.
		cur = &ctxGuard{inner: cur, ctx: ctx}
	}
	if len(a.residual) > 0 && !built.ResidualPushed {
		preds := a.residualPreds()
		name := "filter"
		if multi {
			name = fmt.Sprintf("filter(%s)", a.name)
		}
		cur = count(name, exec.NewFilter(cur, db.dev, func(r tuple.Row) bool {
			return tuple.MatchesAll(preds, r)
		}))
	}
	return cur, nil
}

// build constructs the operator tree for a compiled query, wrapping
// every stage in a row/batch counter for ExecStats. The caller holds
// db.mu (read).
func (cq *compiledQuery) build(db *DB, ctx context.Context) (*builtQuery, error) {
	bq := &builtQuery{}
	count := func(name string, op exec.Operator) exec.Operator {
		c := &opCounter{name: name}
		bq.counters = append(bq.counters, c)
		return &countedOp{inner: op, c: c}
	}

	if cq.emptyWhy != "" {
		bq.root = count("empty", exec.NewValues(cq.out, nil))
		return bq, nil
	}

	inOps := make([]exec.Operator, len(cq.inputs))
	for i, a := range cq.inputs {
		op, err := cq.buildInput(db, ctx, a, bq, count)
		if err != nil {
			return nil, err
		}
		inOps[i] = op
	}

	cur := inOps[0]
	for k, st := range cq.joins {
		op, err := plan.BuildJoin(plan.JoinSpec{
			Left:      cur,
			Right:     inOps[k+1],
			LeftCol:   st.leftCol,
			RightCol:  st.rightCol,
			Algo:      st.algo,
			BuildLeft: st.buildLeft,
			Dev:       db.dev,
		})
		if err != nil {
			return nil, err
		}
		bq.joins = append(bq.joins, op.(exec.JoinStatser))
		cur = count(st.algo.String()+"-join", op)
	}

	if cq.selIdx != nil {
		p, err := exec.NewColProject(cur, cq.selIdx)
		if err != nil {
			return nil, err
		}
		cur = count("project", p)
	}
	if cq.groupIdx >= 0 {
		cur = count("hash-agg", exec.NewHashAggNamed(cur, db.dev, cq.groupIdx, cq.out.Col(0).Name, cq.aggSpecs))
	}
	if cq.needSort {
		cur = count("sort", exec.NewSort(cur, db.dev, cq.orderIdx))
	}
	if cq.hasLim {
		cur = count("limit", exec.NewLimit(cur, cq.limit))
	}
	bq.root = cur
	return bq, nil
}

// Explain compiles the query — access-path choice, residual placement,
// parallelism, per-node cardinality estimates — without executing it
// or touching the simulated device, and returns the printable plan.
func (q *Query) Explain() (*Plan, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	q.db.mu.RLock()
	defer q.db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return cq.plan(), nil
}

// Run compiles and starts the query. The context cancels it: the
// returned Rows checks ctx once per batch refill (never per tuple),
// parallel scan workers observe it between batches and exit promptly,
// and blocking operators (sort, aggregation) check it between the
// batches they drain. After cancellation Rows.Err reports ctx.Err().
//
// As with Scan, always Close the returned Rows.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	if q.db == nil {
		return nil, fmt.Errorf("smoothscan: query has no database")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	db := q.db
	db.mu.RLock()
	defer db.mu.RUnlock()
	cq, err := q.compile()
	if err != nil {
		return nil, err
	}
	return db.startRows(ctx, cq)
}

// startRows builds and opens the operator tree for a bound query and
// hands out its Rows — the shared execute step behind Query.Run and
// Stmt.Run. The caller holds db.mu (read).
func (db *DB) startRows(ctx context.Context, cq *compiledQuery) (*Rows, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Result-cache tier: a revalidated hit serves the materialized
	// result with zero device I/O; a cacheable miss tees the stream
	// into an accumulator for a store at Close.
	cache := db.cacheable(cq)
	if cache {
		if v, ok := db.resCache.Lookup(cq.resKey, db.epochOfLocked); ok {
			return db.serveCached(ctx, cq, v), nil
		}
	}
	bq, err := cq.build(db, ctx)
	if err != nil {
		return nil, err
	}
	ioStart := db.dev.Stats()
	if openErr := bq.root.Open(); openErr != nil {
		// An open-time fault (a dead index root, a failing parallel
		// worker) walks the degradation ladder before giving up; the
		// I/O burned on failed attempts stays inside the query's delta.
		if !IsFaultError(openErr) {
			return nil, openErr
		}
		cq, bq, openErr = db.degradeAndReopen(ctx, cq, openErr)
		if openErr != nil {
			return nil, openErr
		}
	}
	rows := &Rows{
		schema:     cq.out,
		baseSchema: cq.base,
		ctx:        ctx,
		counters:   bq.counters,
		compiled:   cq,
		choice:     cq.driving().choice,
		op:         bq.root,
		smooth:     bq.smooth,
		smoothAll:  bq.workers,
		joins:      bq.joins,
		planCached: cq.planCached,
		ioStart:    ioStart,
	}
	if cache && len(cq.degraded) == 0 {
		rows.acc = newResAccum(cq.resKey, cq.resEpochs, db.resCache.EntryCap(), cq.out.NumCols())
	}
	rows.db = db
	db.openScans.Add(1)
	return rows, nil
}
