package smoothscan

// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per exhibit, backed by internal/harness),
// plus operator-level micro-benchmarks and the ablation studies listed
// in DESIGN.md.
//
// Run them all:
//
//	go test -bench=. -benchmem
//
// The interesting output is the per-benchmark custom metrics
// (simulated cost units), not ns/op: the simulation is deterministic,
// so the simulated metrics are exactly reproducible while wall time
// varies with the host.

import (
	"context"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/harness"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
	"smoothscan/internal/workload"
)

// benchConfig keeps the harness-backed benchmarks fast enough to run
// as a suite while preserving every paper shape.
func benchConfig() harness.Config {
	return harness.Config{
		MicroRows:  100_000,
		SkewRows:   150_000,
		TPCHOrders: 5_000,
		Seed:       1,
	}
}

// runExperiment executes one harness experiment per iteration.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	r := harness.New(benchConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab, err := r.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty experiment result")
		}
	}
}

// BenchmarkFig1TunedRegression regenerates Figure 1 (tuning-induced
// regressions on the 19-query workload under stale statistics).
func BenchmarkFig1TunedRegression(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFig4TPCH regenerates Figure 4 (TPC-H Q1/Q4/Q6/Q7/Q14 with
// and without Smooth Scan, CPU vs I/O breakdown).
func BenchmarkFig4TPCH(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkTable2IOAnalysis regenerates Table II (I/O requests and
// data volume per query).
func BenchmarkTable2IOAnalysis(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkFig5aOrderBy regenerates Figure 5a (selectivity sweep with
// ORDER BY).
func BenchmarkFig5aOrderBy(b *testing.B) { runExperiment(b, "fig5a") }

// BenchmarkFig5bNoOrderBy regenerates Figure 5b (sweep without ORDER
// BY).
func BenchmarkFig5bNoOrderBy(b *testing.B) { runExperiment(b, "fig5b") }

// BenchmarkFig6Modes regenerates Figure 6 (Entire Page Probe vs
// Flattening Access sensitivity).
func BenchmarkFig6Modes(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7aPolicies regenerates Figure 7a (Greedy vs
// Selectivity-Increase vs Elastic).
func BenchmarkFig7aPolicies(b *testing.B) { runExperiment(b, "fig7a") }

// BenchmarkFig7bTriggers regenerates Figure 7b (Eager vs
// Optimizer-driven vs SLA-driven triggers).
func BenchmarkFig7bTriggers(b *testing.B) { runExperiment(b, "fig7b") }

// BenchmarkFig8Skew regenerates Figure 8 (skewed distribution:
// execution time and pages read per access path).
func BenchmarkFig8Skew(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Caches regenerates Figure 9 (Result Cache overhead and
// hit rate; morphing accuracy).
func BenchmarkFig9Caches(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10SSD regenerates Figure 10 (the sweep on the SSD
// profile).
func BenchmarkFig10SSD(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11SwitchScan regenerates Figure 11 (the Switch Scan
// performance cliff).
func BenchmarkFig11SwitchScan(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkCompetitiveRatio regenerates the Section V-A competitive
// analysis summary.
func BenchmarkCompetitiveRatio(b *testing.B) { runExperiment(b, "tab-cr") }

// --- operator-level micro-benchmarks (wall-clock performance of the
// engine itself, complementing the simulated-cost experiments) ---

func benchTable(b *testing.B, rows int64) (*workload.Table, *disk.Device, *bufferpool.Pool) {
	b.Helper()
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: rows, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return tab, dev, bufferpool.New(dev, int(tab.File.NumPages()/10)+64)
}

// BenchmarkSmoothScanThroughput measures tuples/second through the
// morphing operator at 100% selectivity. Allocations are reported:
// the batched pipeline's budget is well under 0.2 allocs/tuple (see
// TestBatchedScanAllocsPerTuple).
func BenchmarkSmoothScanThroughput(b *testing.B) {
	tab, dev, pool := benchTable(b, 100_000)
	b.ReportAllocs()
	b.ResetTimer()
	var produced int64
	for i := 0; i < b.N; i++ {
		pool.Reset()
		dev.ResetStats()
		ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(1), core.Config{})
		if err != nil {
			b.Fatal(err)
		}
		n, err := exec.Count(ss)
		if err != nil {
			b.Fatal(err)
		}
		produced += n
	}
	b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkSmoothScanSelectivities reports simulated cost across the
// selectivity range in one run (sub-benchmarks per point).
func BenchmarkSmoothScanSelectivities(b *testing.B) {
	for _, pct := range []float64{0.01, 1, 20, 100} {
		b.Run(strings.ReplaceAll(strconv.FormatFloat(pct, 'f', -1, 64), ".", "_")+"pct", func(b *testing.B) {
			tab, dev, pool := benchTable(b, 100_000)
			var simTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Reset()
				dev.ResetStats()
				ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(pct/100), core.Config{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Count(ss); err != nil {
					b.Fatal(err)
				}
				simTime = dev.Stats().Time()
			}
			b.ReportMetric(simTime, "simcost")
		})
	}
}

// BenchmarkAblationMaxRegionCap sweeps the morphing-region cap — the
// design choice the paper fixes at 2K pages (16 MB) after its own
// sensitivity analysis.
func BenchmarkAblationMaxRegionCap(b *testing.B) {
	for _, capPages := range []int64{16, 128, 1024, 2048, 8192} {
		b.Run(strconv.FormatInt(capPages, 10), func(b *testing.B) {
			tab, dev, pool := benchTable(b, 100_000)
			var simTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Reset()
				dev.ResetStats()
				ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(0.5),
					core.Config{MaxRegionPages: capPages})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Count(ss); err != nil {
					b.Fatal(err)
				}
				simTime = dev.Stats().Time()
			}
			b.ReportMetric(simTime, "simcost")
		})
	}
}

// BenchmarkAblationOrderedDelivery compares the ordered (Result
// Cache) and unordered variants — the cost of preserving the
// interesting order.
func BenchmarkAblationOrderedDelivery(b *testing.B) {
	for _, ordered := range []bool{false, true} {
		name := "unordered"
		if ordered {
			name = "ordered"
		}
		b.Run(name, func(b *testing.B) {
			tab, dev, pool := benchTable(b, 100_000)
			var simTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool.Reset()
				dev.ResetStats()
				ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, tab.PredForSelectivity(0.2),
					core.Config{Ordered: ordered})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := exec.Count(ss); err != nil {
					b.Fatal(err)
				}
				simTime = dev.Stats().Time()
			}
			b.ReportMetric(simTime, "simcost")
		})
	}
}

// BenchmarkBTreeSeek measures index descent + first-entry latency.
func BenchmarkBTreeSeek(b *testing.B) {
	tab, _, pool := benchTable(b, 200_000)
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it, err := tab.Index.SeekGE(pool, rng.Int63n(workload.DefaultDomain))
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := it.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBufferPoolGet measures the page-cache hot path.
func BenchmarkBufferPoolGet(b *testing.B) {
	tab, dev, _ := benchTable(b, 50_000)
	pool := bufferpool.New(dev, 128)
	numPages := tab.File.NumPages()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pool.Get(tab.File.Space(), rng.Int63n(numPages)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchDecode measures raw page decoding into a reused batch:
// the innermost loop of every batched scan (no I/O, no operator
// overhead). It reports tuples/s and must stay allocation-free.
func BenchmarkBatchDecode(b *testing.B) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 10_000, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	pool := bufferpool.New(dev, int(tab.File.NumPages())+8)
	pages, err := tab.File.GetRun(pool, 0, tab.File.NumPages(), nil)
	if err != nil {
		b.Fatal(err)
	}
	batch := tuple.NewBatchFor(tab.File.Schema(), 4096)
	b.ReportAllocs()
	b.ResetTimer()
	var decoded int64
	for i := 0; i < b.N; i++ {
		batch.Reset()
		for _, page := range pages {
			count := heap.PageTupleCount(page)
			if batch.Cap()-batch.Len() < count {
				batch.Reset()
			}
			tab.File.DecodeBatch(page, 0, count, batch)
			decoded += int64(count)
		}
	}
	b.ReportMetric(float64(decoded)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkParallelSmoothScan measures wall-clock tuples/second of the
// partitioned parallel Smooth Scan at P = 1/2/4/8 workers, 100%
// selectivity (the decode-bound regime where intra-query parallelism
// pays). P=1 is the classic serial operator. Two custom metrics are
// reported per sub-benchmark: tuples/s (wall clock) and simcost (the
// simulated device cost of one cold scan — parallel runs may differ
// from serial only in random/sequential classification; the delta is
// visible by comparing the sub-benchmarks). cmd/ssload -bench parallel
// emits the same sweep as machine-readable BENCH_parallel.json.
func BenchmarkParallelSmoothScan(b *testing.B) {
	const (
		numRows = 200_000
		domain  = 100_000
	)
	db, err := Open(Options{PoolPages: 2048})
	if err != nil {
		b.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	vals := make([]int64, 10)
	for i := int64(0); i < numRows; i++ {
		vals[0] = i
		for c := 1; c < 10; c++ {
			vals[c] = rng.Int63n(domain)
		}
		if err := tb.Append(vals...); err != nil {
			b.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run("P="+strconv.Itoa(p), func(b *testing.B) {
			b.ReportAllocs()
			var produced int64
			var simTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := db.ColdCache(); err != nil {
					b.Fatal(err)
				}
				if err := db.ResetStats(); err != nil {
					b.Fatal(err)
				}
				rows, err := db.Scan("t", "val", 0, domain, ScanOptions{Parallelism: p})
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
					produced++
				}
				if rows.Err() != nil {
					b.Fatal(rows.Err())
				}
				if err := rows.Close(); err != nil {
					b.Fatal(err)
				}
				simTime = db.Stats().Time()
			}
			b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(simTime, "simcost")
		})
	}
}

// BenchmarkShardedScan measures wall-clock tuples/second of the
// scatter-gather full scan at N = 1/2/4 range-partitioned shards,
// unordered fan-in (the shard-parallel analogue of
// BenchmarkParallelSmoothScan, through the ShardedDB facade). Two
// custom metrics per sub-benchmark: tuples/s (wall clock, the gated
// one — benchgate also derives the N=4/N=1 scaling ratio from these)
// and simcost (deterministic simulated device cost of one cold
// gather). On a single-processor runner the tuples/s ratio across N
// carries no scaling signal; benchgate reports it non-binding there.
func BenchmarkShardedScan(b *testing.B) {
	const (
		numRows = 100_000
		domain  = 100_000
	)
	for _, n := range []int{1, 2, 4} {
		b.Run("N="+strconv.Itoa(n), func(b *testing.B) {
			s, err := OpenSharded(n, Options{PoolPages: 1024})
			if err != nil {
				b.Fatal(err)
			}
			part := RangePartitioning("val", EqualWidthBounds(0, domain, n)...)
			tb, err := s.CreateShardedTable("t", part, "id", "val", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(17))
			vals := make([]int64, 10)
			for i := int64(0); i < numRows; i++ {
				vals[0] = i
				for c := 1; c < 10; c++ {
					vals[c] = rng.Int63n(domain)
				}
				if err := tb.Append(vals...); err != nil {
					b.Fatal(err)
				}
			}
			if err := tb.Finish(); err != nil {
				b.Fatal(err)
			}
			if err := s.CreateIndex("t", "val"); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var produced int64
			var simTime float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.ColdCache(); err != nil {
					b.Fatal(err)
				}
				if err := s.ResetStats(); err != nil {
					b.Fatal(err)
				}
				rows, err := s.Query("t").Where("val", Between(0, domain)).Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				for rows.Next() {
					produced++
				}
				if rows.Err() != nil {
					b.Fatal(rows.Err())
				}
				if err := rows.Close(); err != nil {
					b.Fatal(err)
				}
				simTime = s.Stats().Time()
			}
			b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
			b.ReportMetric(simTime, "simcost")
		})
	}
}

// BenchmarkHashJoinThroughput measures joined tuples/second through
// the batched hash join (build 20k rows, probe 200k, ~1 match per
// probe row) over in-memory inputs — the operator's own overhead,
// without scan I/O.
func BenchmarkHashJoinThroughput(b *testing.B) {
	const buildRows, probeRows = 20_000, 200_000
	rng := rand.New(rand.NewSource(23))
	build := make([]tuple.Row, buildRows)
	for i := range build {
		build[i] = tuple.IntsRow(int64(i), rng.Int63n(1000))
	}
	probe := make([]tuple.Row, probeRows)
	for i := range probe {
		probe[i] = tuple.IntsRow(rng.Int63n(buildRows), int64(i))
	}
	left := exec.NewValues(tuple.Ints(2), probe)
	right := exec.NewValues(tuple.Ints(2), build)
	b.ReportAllocs()
	b.ResetTimer()
	var produced int64
	for i := 0; i < b.N; i++ {
		j := exec.NewHashJoinBatch(left, right, nil, 0, 0, false)
		n, err := exec.Count(j)
		if err != nil {
			b.Fatal(err)
		}
		produced += n
	}
	b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkPreparedExec measures the prepare → bind → execute
// lifecycle against ad-hoc compilation on a warm ~1%-selectivity
// two-conjunct query: "adhoc-uncached" recompiles the structure every
// query (plan cache disabled), "adhoc-cached" hits the DB-wide plan
// cache, "prepared" binds a shared Stmt. The interesting metrics are
// allocs/op (the bind phase allocates a fraction of a full compile —
// see TestPreparedBindAllocs for the enforced 50% floor) and tuples/s,
// which benchgate guards.
func BenchmarkPreparedExec(b *testing.B) {
	// build and drain take the sub-benchmark's own *testing.B: Fatal
	// must run on the goroutine of the benchmark it fails.
	build := func(b *testing.B, planCache int) *DB {
		b.Helper()
		db, err := Open(Options{PoolPages: 2048, PlanCache: planCache})
		if err != nil {
			b.Fatal(err)
		}
		tb, err := db.CreateTable("t", "id", "val", "cat", "payload")
		if err != nil {
			b.Fatal(err)
		}
		for i := int64(0); i < 50_000; i++ {
			if err := tb.Append(i, (i*7919)%10_000, (i*104729)%50, i%1000); err != nil {
				b.Fatal(err)
			}
		}
		if err := tb.Finish(); err != nil {
			b.Fatal(err)
		}
		for _, col := range []string{"val", "cat"} {
			if err := db.CreateIndex("t", col); err != nil {
				b.Fatal(err)
			}
		}
		if err := db.Analyze("t", "val", "cat"); err != nil {
			b.Fatal(err)
		}
		return db
	}
	drain := func(b *testing.B, rows *Rows, err error) int64 {
		b.Helper()
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for rows.Next() {
			n++
		}
		if rows.Err() != nil {
			b.Fatal(rows.Err())
		}
		rows.Close()
		return n
	}
	const lo, hi = 4_000, 4_100
	ctx := context.Background()

	b.Run("adhoc-uncached", func(b *testing.B) {
		db := build(b, -1)
		b.ReportAllocs()
		b.ResetTimer()
		var produced int64
		for i := 0; i < b.N; i++ {
			rows, err := db.Query("t").
				Where("val", Between(lo, hi)).
				Where("cat", Lt(25)).
				Run(ctx)
			produced += drain(b, rows, err)
		}
		b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
	})
	b.Run("adhoc-cached", func(b *testing.B) {
		db := build(b, 0)
		b.ReportAllocs()
		b.ResetTimer()
		var produced int64
		for i := 0; i < b.N; i++ {
			rows, err := db.Query("t").
				Where("val", Between(lo, hi)).
				Where("cat", Lt(25)).
				Run(ctx)
			produced += drain(b, rows, err)
		}
		b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
	})
	b.Run("prepared", func(b *testing.B) {
		db := build(b, 0)
		stmt, err := db.Prepare(db.Query("t").
			Where("val", Between(Param("lo"), Param("hi"))).
			Where("cat", Lt(25)))
		if err != nil {
			b.Fatal(err)
		}
		bind := Bind{"lo": lo, "hi": hi}
		b.ReportAllocs()
		b.ResetTimer()
		var produced int64
		for i := 0; i < b.N; i++ {
			rows, err := stmt.Run(ctx, bind)
			produced += drain(b, rows, err)
		}
		b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
	})
}

// BenchmarkResultCacheHit measures serving a repeated ~2%-selectivity
// query from the semantic result-cache tier (docs/CACHING.md): the
// first execution scans and stores, every timed iteration after it is
// a pure in-memory replay of the materialized result — the tier's
// zero-device-I/O fast path, which benchgate guards in tuples/s.
func BenchmarkResultCacheHit(b *testing.B) {
	db, err := Open(Options{PoolPages: 2048, ResultCacheBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "payload")
	if err != nil {
		b.Fatal(err)
	}
	for i := int64(0); i < 50_000; i++ {
		if err := tb.Append(i, (i*7919)%10_000, i%1000); err != nil {
			b.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	run := func() (int64, bool) {
		rows, err := db.Query("t").Where("val", Between(4_000, 4_200)).Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		for rows.Next() {
			n++
		}
		if rows.Err() != nil {
			b.Fatal(rows.Err())
		}
		rows.Close()
		return n, rows.ExecStats().ResultCache.Hit
	}
	run() // populate the cache
	if _, hit := run(); !hit {
		b.Fatal("repeat query was not served from the result cache")
	}
	b.ReportAllocs()
	b.ResetTimer()
	var produced int64
	for i := 0; i < b.N; i++ {
		n, hit := run()
		if !hit {
			b.Fatal("result-cache entry lost mid-benchmark")
		}
		produced += n
	}
	b.ReportMetric(float64(produced)/b.Elapsed().Seconds(), "tuples/s")
}

// BenchmarkPublicAPIScan exercises the full public stack end to end.
func BenchmarkPublicAPIScan(b *testing.B) {
	db, err := Open(Options{PoolPages: 256})
	if err != nil {
		b.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := int64(0); i < 50_000; i++ {
		if err := tb.Append(i, rng.Int63n(10_000)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		b.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ColdCache()
		rows, err := db.Scan("t", "val", 100, 200, ScanOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for rows.Next() {
		}
		if rows.Err() != nil {
			b.Fatal(rows.Err())
		}
		rows.Close()
	}
}
