GO ?= go

.PHONY: check fmt vet build test race bench-smoke bench bench-parallel bench-baseline bench-gate cover equiv chaos server-smoke multinode-smoke

## check: everything CI runs — format, vet, build, tests (incl. -race),
## bench smoke, the facade-equivalence golden diff, the coverage floor,
## the chaos sweep, and the client/server and multinode smokes.
check: fmt vet build test race bench-smoke equiv cover chaos server-smoke multinode-smoke

## COVER_FLOOR: minimum total statement coverage (percent) make cover accepts.
COVER_FLOOR ?= 70.0

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the test suite under the race detector (the concurrent scan
## and session tests only prove anything when this runs).
race:
	$(GO) test -race ./...

## bench-smoke: one iteration of every benchmark so they cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench: the real benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-parallel: the P=1/2/4/8 parallel-scan sweep, refreshing the
## machine-readable trajectory file BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/ssload -bench parallel -json BENCH_parallel.json

## bench-baseline: regenerate the committed throughput baseline the CI
## perf gate compares against. Run after deliberate perf changes (or a
## CI runner class change) and commit testdata/bench_baseline.json.
bench-baseline:
	$(GO) run ./cmd/benchgate -write

## bench-gate: fail on a >25% tuples/s regression against the
## committed baseline (best-of-3 runs; see cmd/benchgate for the
## noise-tolerance rationale).
bench-gate:
	$(GO) run ./cmd/benchgate

## COVER_DIR: where coverage artifacts land — an ignored scratch dir,
## so `make cover` never strands a cover.out in the working tree.
COVER_DIR ?= tmp

## cover: the test suite with coverage, enforcing COVER_FLOOR on the total.
## -coverpkg counts cross-package coverage: ssclient and internal/loadgen
## are exercised by the server and remote-equivalence suites, not by
## same-package tests.
cover:
	@mkdir -p $(COVER_DIR)
	$(GO) test -coverprofile=$(COVER_DIR)/cover.out -coverpkg=./... ./...
	@total=$$($(GO) tool cover -func=$(COVER_DIR)/cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); 	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; 	awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN { exit (t+0 < f+0) ? 1 : 0 }' || 		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor" >&2; exit 1; }

## equiv: diff the deterministic ssbench experiments against the
## committed golden — proves facade/plan refactors left the simulated
## I/O and CPU accounting byte-identical.
equiv:
	./scripts/equivcheck.sh

## chaos: the fault-injection matrix under the race detector plus the
## ssload chaos sweep — recovered results must be byte-identical to
## the fault-free oracle, unrecoverable faults must surface as typed
## errors with no goroutine leaks.
chaos:
	$(GO) test -race -run 'TestFault' -count=1 . ./internal/disk/
	$(GO) run ./cmd/ssload -chaos -rows 60000 -clients 4 -queries 32

## server-smoke: boot ssserver and drive it with ssload -addr, both
## race-instrumented — plain, prepared and chaos remote runs must be
## clean (zero failed queries) with nonzero client-observed throughput.
server-smoke:
	./scripts/server_smoke.sh

## multinode-smoke: boot N race-instrumented shard-node ssservers and
## drive them with a remote-sharded ssload (-shard-addrs) — clean runs
## whose result digest must be identical to in-process sharded and
## unsharded runs of the same workload.
multinode-smoke:
	./scripts/multinode_smoke.sh
