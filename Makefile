GO ?= go

.PHONY: check fmt vet build test bench-smoke bench

## check: everything CI runs — format, vet, build, tests, bench smoke.
check: fmt vet build test bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## bench-smoke: one iteration of every benchmark so they cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench: the real benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .
