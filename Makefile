GO ?= go

.PHONY: check fmt vet build test race bench-smoke bench bench-parallel

## check: everything CI runs — format, vet, build, tests (incl. -race), bench smoke.
check: fmt vet build test race bench-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

## race: the test suite under the race detector (the concurrent scan
## and session tests only prove anything when this runs).
race:
	$(GO) test -race ./...

## bench-smoke: one iteration of every benchmark so they cannot rot.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...

## bench: the real benchmark suite with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

## bench-parallel: the P=1/2/4/8 parallel-scan sweep, refreshing the
## machine-readable trajectory file BENCH_parallel.json.
bench-parallel:
	$(GO) run ./cmd/ssload -bench parallel -json BENCH_parallel.json
