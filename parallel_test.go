package smoothscan

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// buildParallelTestDB loads a table of numRows 4-column rows: c0 a
// dense key, c1 uniform over [0, domain) and indexed, c2/c3 payload.
func buildParallelTestDB(t testing.TB, numRows, domain int64, seed int64) *DB {
	t.Helper()
	db, err := Open(Options{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "p1", "p2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := int64(0); i < numRows; i++ {
		if err := tb.Append(i, rng.Int63n(domain), rng.Int63(), i*3); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	return db
}

// collect drains a scan into materialised rows.
func collectScan(t testing.TB, db *DB, opts ScanOptions, lo, hi int64) [][]int64 {
	t.Helper()
	rows, err := db.Scan("t", "val", lo, hi, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var out [][]int64
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	return out
}

// sortRows orders rows by every column, turning a multiset comparison
// into a slice comparison.
func sortRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for c := range a {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return false
	})
}

func rowsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for c := range a[i] {
			if a[i][c] != b[i][c] {
				return false
			}
		}
	}
	return true
}

// TestParallelSerialEquivalence is the property test of the parallel
// subsystem: for every morphing policy, ordered and unordered
// delivery, and selectivities from 0.01% to 100%, P ∈ {1,2,4,8}
// workers must produce exactly the rows of the serial scan — the same
// multiset always, the same sequence when Ordered — and the same
// total qualifying-tuple count.
func TestParallelSerialEquivalence(t *testing.T) {
	const (
		numRows = 30_000
		domain  = 100_000
	)
	db := buildParallelTestDB(t, numRows, domain, 11)
	selectivities := []float64{0.0001, 0.001, 0.01, 0.1, 1.0} // 0.01% .. 100%
	policies := []Policy{Elastic, Greedy, SelectivityIncrease}
	parallelisms := []int{1, 2, 4, 8}

	for _, policy := range policies {
		for _, ordered := range []bool{false, true} {
			for _, sel := range selectivities {
				hi := int64(float64(domain) * sel)
				base := ScanOptions{Policy: policy, Ordered: ordered}
				serial := collectScan(t, db, base, 0, hi)
				wantLen := len(serial)
				serialSorted := append([][]int64(nil), serial...)
				sortRows(serialSorted)

				for _, p := range parallelisms {
					opts := base
					opts.Parallelism = p
					got := collectScan(t, db, opts, 0, hi)
					if len(got) != wantLen {
						t.Fatalf("policy=%v ordered=%v sel=%v P=%d: %d rows, serial %d",
							policy, ordered, sel, p, len(got), wantLen)
					}
					if ordered {
						if !rowsEqual(got, serial) {
							t.Fatalf("policy=%v sel=%v P=%d: ordered rows differ from serial",
								policy, sel, p)
						}
						for i := 1; i < len(got); i++ {
							if got[i][1] < got[i-1][1] {
								t.Fatalf("policy=%v sel=%v P=%d: output not key-ordered at row %d",
									policy, sel, p, i)
							}
						}
					} else {
						sortRows(got)
						if !rowsEqual(got, serialSorted) {
							t.Fatalf("policy=%v sel=%v P=%d: row multiset differs from serial",
								policy, sel, p)
						}
					}
				}
			}
		}
	}
}

// TestParallelSmoothStatsAggregate checks that the aggregated operator
// stats of a parallel scan account for every produced tuple and every
// heap page exactly once.
func TestParallelSmoothStatsAggregate(t *testing.T) {
	db := buildParallelTestDB(t, 20_000, 1000, 3)
	rows, err := db.Scan("t", "val", 0, 1000, ScanOptions{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	st, ok := rows.SmoothStats()
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no smooth stats from parallel smooth scan")
	}
	if st.Produced != int64(n) || n != 20_000 {
		t.Errorf("Produced = %d, drained %d, want 20000", st.Produced, n)
	}
	pages, err := db.NumPages("t")
	if err != nil {
		t.Fatal(err)
	}
	// 100% selectivity: every heap page analysed exactly once across
	// all workers (shards are disjoint).
	if st.PagesFetched != pages {
		t.Errorf("PagesFetched = %d, want %d (each page exactly once)", st.PagesFetched, pages)
	}
}

// TestParallelFullScanEquivalence covers the PathFull shard workers.
func TestParallelFullScanEquivalence(t *testing.T) {
	db := buildParallelTestDB(t, 25_000, 10_000, 5)
	for _, sel := range []float64{0.001, 0.3, 1.0} {
		hi := int64(10_000 * sel)
		serial := collectScan(t, db, ScanOptions{Path: PathFull}, 0, hi)
		sortRows(serial)
		for _, p := range []int{2, 4, 8} {
			got := collectScan(t, db, ScanOptions{Path: PathFull, Parallelism: p}, 0, hi)
			sortRows(got)
			if !rowsEqual(got, serial) {
				t.Fatalf("full scan sel=%v P=%d: rows differ from serial", sel, p)
			}
		}
	}
}

// TestConcurrentSessions runs many client goroutines against one DB —
// mixed serial and parallel scans — and checks that every session sees
// exactly its own correct result. Run under -race this doubles as the
// inter-query concurrency safety test for the shared buffer pool,
// device and facade.
func TestConcurrentSessions(t *testing.T) {
	const numRows = 20_000
	db := buildParallelTestDB(t, numRows, 1000, 9)
	want := len(collectScan(t, db, ScanOptions{}, 100, 900))

	const clients = 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			opts := ScanOptions{Parallelism: c % 4} // 0/1 serial, 2,3 parallel
			if c%2 == 0 {
				opts.Ordered = true
			}
			for iter := 0; iter < 3; iter++ {
				rows, err := db.Scan("t", "val", 100, 900, opts)
				if err != nil {
					errCh <- err
					return
				}
				n := 0
				for rows.Next() {
					n++
				}
				err = rows.Err()
				rows.Close()
				if err != nil {
					errCh <- err
					return
				}
				if n != want {
					errCh <- fmt.Errorf("client %d iter %d: %d rows, want %d", c, iter, n, want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestColdCacheGuard checks that cache/stats resets are refused while
// scans are open and allowed again after the last Close.
func TestColdCacheGuard(t *testing.T) {
	db := buildParallelTestDB(t, 5_000, 1000, 1)
	rows, err := db.Scan("t", "val", 0, 1000, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ColdCache(); !errors.Is(err, ErrScansOpen) {
		t.Errorf("ColdCache with open scan = %v, want ErrScansOpen", err)
	}
	if err := db.ResetStats(); !errors.Is(err, ErrScansOpen) {
		t.Errorf("ResetStats with open scan = %v, want ErrScansOpen", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rows.Close(); err != nil { // double close is a no-op
		t.Fatal(err)
	}
	if err := db.ColdCache(); err != nil {
		t.Errorf("ColdCache after close = %v", err)
	}
	if err := db.ResetStats(); err != nil {
		t.Errorf("ResetStats after close = %v", err)
	}
}

// TestParallelEdgeConfigs covers configurations off the eager/unbounded
// happy path: non-eager triggers (whose per-worker trigger points
// differ from serial but whose result set must not), a spilling Result
// Cache, insert-delta entries merged by the sharded leaf iterator, and
// an empty key range.
func TestParallelEdgeConfigs(t *testing.T) {
	db := buildParallelTestDB(t, 15_000, 5_000, 21)

	t.Run("optimizer-trigger", func(t *testing.T) {
		opts := ScanOptions{Trigger: OptimizerDriven, EstimatedRows: 50} // gross underestimate
		serial := collectScan(t, db, opts, 0, 5_000)
		sortRows(serial)
		opts.Parallelism = 4
		got := collectScan(t, db, opts, 0, 5_000)
		sortRows(got)
		if !rowsEqual(got, serial) {
			t.Error("optimizer-driven trigger: parallel rows differ from serial")
		}
	})

	t.Run("sla-trigger", func(t *testing.T) {
		bound, err := db.FullScanCost("t")
		if err != nil {
			t.Fatal(err)
		}
		opts := ScanOptions{Trigger: SLADriven, SLABound: 2 * bound}
		serial := collectScan(t, db, opts, 0, 2_500)
		sortRows(serial)
		opts.Parallelism = 4
		got := collectScan(t, db, opts, 0, 2_500)
		sortRows(got)
		if !rowsEqual(got, serial) {
			t.Error("SLA-driven trigger: parallel rows differ from serial")
		}
	})

	t.Run("spilling-result-cache", func(t *testing.T) {
		opts := ScanOptions{Ordered: true, ResultCacheBudget: 16 << 10}
		serial := collectScan(t, db, opts, 0, 5_000)
		opts.Parallelism = 4
		got := collectScan(t, db, opts, 0, 5_000)
		if !rowsEqual(got, serial) {
			t.Error("spilling ordered scan: parallel rows differ from serial")
		}
	})

	t.Run("insert-delta", func(t *testing.T) {
		for i := int64(0); i < 500; i++ {
			if err := db.Insert("t", 100_000+i, i%5_000, i, i); err != nil {
				t.Fatal(err)
			}
		}
		serial := collectScan(t, db, ScanOptions{Ordered: true}, 0, 5_000)
		got := collectScan(t, db, ScanOptions{Ordered: true, Parallelism: 4}, 0, 5_000)
		if !rowsEqual(got, serial) {
			t.Error("after inserts: parallel ordered rows differ from serial")
		}
		if len(got) != 15_500 {
			t.Errorf("drained %d rows, want 15500", len(got))
		}
	})

	t.Run("empty-range", func(t *testing.T) {
		got := collectScan(t, db, ScanOptions{Parallelism: 4}, 7, 7)
		if len(got) != 0 {
			t.Errorf("empty key range produced %d rows", len(got))
		}
	})
}

// TestParallelismClamping: oversized parallelism values are clamped,
// never errors, and still produce correct results.
func TestParallelismClamping(t *testing.T) {
	db := buildParallelTestDB(t, 2_000, 100, 2)
	pages, err := db.NumPages("t")
	if err != nil {
		t.Fatal(err)
	}
	got := collectScan(t, db, ScanOptions{Parallelism: int(pages) * 10, Ordered: true}, 0, 100)
	if len(got) != 2_000 {
		t.Errorf("clamped parallel scan produced %d rows, want 2000", len(got))
	}
}
