package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnboundParam is returned (wrapped) when a query references a
// Param that the execution does not bind: running a parameterized
// query ad hoc, or calling Stmt.Run / Stmt.Explain with a Bind set
// that misses one of the statement's parameters.
var ErrUnboundParam = errors.New("smoothscan: parameter not bound")

// ErrUnknownParam is returned (wrapped) when a Bind set names a
// parameter the prepared statement does not have — almost always a
// typo, so it is an error rather than silently ignored.
var ErrUnknownParam = errors.New("smoothscan: bind names unknown parameter")

// Bind maps parameter names to the values of one execution. The same
// parameter may appear at several places in the query; it binds once.
type Bind map[string]int64

// Stmt is a prepared statement: the compile-once half of the
// prepare → bind → execute query lifecycle. DB.Prepare validates the
// query's structure — tables, columns, join tree, projection — and
// compiles it into an immutable plan template exactly once; each Run
// or Explain then performs only the cheap bind phase: substitute the
// Bind values and re-decide the estimate-sensitive choices (driving
// index among the indexed conjuncts, access path under PathAuto,
// hash-join build side and hash-vs-merge selection, parallelism clamp)
// from the tables' statistics at that moment, with zero device I/O.
// Two bind sets can therefore execute the same Stmt with different
// driving indexes — the paper's statistics-robustness argument applied
// at the API layer.
//
// A Stmt is immutable and safe for concurrent use: any number of
// goroutines may Run it simultaneously, each getting an independent
// Rows. It needs no Close and holds no device or pool state.
type Stmt struct {
	db     *DB
	qt     *qtemplate
	lits   []int64
	params []string
}

// Prepare validates and compiles the query's structure into a
// reusable plan template. Structural mistakes — unknown tables or
// columns, ambiguous conjuncts, bad argument types — surface here;
// index availability and everything estimate-sensitive are re-checked
// at every bind, so a statement prepared before a CreateIndex or
// Analyze picks the improvement up on its next Run.
//
// The template is also registered in the DB-wide plan cache under the
// query's canonical shape, so ad-hoc runs of the same shape hit it.
func (db *DB) Prepare(q *Query) (*Stmt, error) {
	if q == nil || q.db == nil {
		return nil, fmt.Errorf("smoothscan: Prepare of a nil or detached query")
	}
	if q.db != db {
		return nil, fmt.Errorf("smoothscan: Prepare of a query built on a different DB")
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	qt, lits, _, err := db.templateFor(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{db: db, qt: qt, lits: lits, params: qt.pt.Params}, nil
}

// Params returns the statement's parameter names in first-use order.
func (s *Stmt) Params() []string {
	return append([]string(nil), s.params...)
}

// checkBind rejects bind sets naming parameters the statement does
// not have.
func (s *Stmt) checkBind(b Bind) error {
	var unknown []string
	for name := range b {
		if !s.qt.pt.HasParam(name) {
			unknown = append(unknown, "$"+name)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("%w: %s (statement has %s)", ErrUnknownParam,
		strings.Join(unknown, ", "), s.describeParams())
}

func (s *Stmt) describeParams() string {
	if len(s.params) == 0 {
		return "no parameters"
	}
	return "$" + strings.Join(s.params, ", $")
}

// Run binds the parameters and executes the statement. Binding is the
// cheap phase — constants substituted, estimate-sensitive plan choices
// re-decided, no template recompilation, no device access — and the
// execution is value-for-value identical to running the equivalent
// literal query ad hoc. Missing parameters return ErrUnboundParam,
// extra ones ErrUnknownParam.
//
// Run is safe to call from many goroutines at once; as with Query.Run,
// always Close the returned Rows.
func (s *Stmt) Run(ctx context.Context, b Bind) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := s.checkBind(b); err != nil {
		return nil, err
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	cq, err := s.db.bindTemplate(s.qt, s.lits, b, true)
	if err != nil {
		return nil, err
	}
	cq.planCached = true
	return s.db.startRows(ctx, cq)
}

// Explain binds the parameters and returns the plan this execution
// would run, without touching the device — the same tree Query.Explain
// renders, annotated with the bound values ("bind: $lo=…") and the
// estimate-sensitive decisions the bind phase re-made ("re-planned at
// bind: …"). Parameter-fed predicate bounds render as $name markers in
// the plan details.
func (s *Stmt) Explain(b Bind) (*Plan, error) {
	if err := s.checkBind(b); err != nil {
		return nil, err
	}
	s.db.mu.RLock()
	defer s.db.mu.RUnlock()
	cq, err := s.db.bindTemplate(s.qt, s.lits, b, true)
	if err != nil {
		return nil, err
	}
	return cq.plan(), nil
}

// Close releases the statement. An in-process statement holds no
// resources beyond its compiled template, so Close is a no-op; it
// exists so code written against the Engine interface — where a remote
// statement does hold a server-side handle — can treat every
// PreparedQuery uniformly.
func (s *Stmt) Close() error { return nil }
