package smoothscan_test

// Semantic result-cache tests at the public API boundary, across all
// three execution fronts (local DB, ShardedDB coordinator, SSWP
// server). The mechanism itself — keying, epochs, eviction, TTL — is
// unit-tested in internal/rescache; what these tests pin is the
// wiring contract: a repeat execution is served with exactly zero
// device I/O and ExecStats.ResultCache.Hit set, a returned Insert is
// never followed by a pre-write result (enforced under -race), and a
// disabled tier is indistinguishable from the pre-tier engine.

import (
	"context"
	"strings"
	"sync/atomic"
	"testing"

	"smoothscan"
	"smoothscan/internal/loadgen"
	"smoothscan/internal/server"
	"smoothscan/ssclient"
)

// drainCount drains a cursor, returning the row count and the fully
// populated ExecStats.
func drainCount(t *testing.T, cur smoothscan.Cursor, err error) (int, smoothscan.ExecStats) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for cur.Next() {
		n++
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	st := cur.ExecStats()
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	return n, st
}

// TestResultCacheLocalLifecycle walks the full local lifecycle:
// miss → store → hit (zero device I/O, identical rows, Explain
// marker) → Insert invalidates → miss with the new row → re-cache →
// ColdCache purges.
func TestResultCacheLocalLifecycle(t *testing.T) {
	db, err := smoothscan.Open(smoothscan.Options{PoolPages: 128, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 4000; i++ {
		if err := tb.Append(i, i%100); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func() ([][]int64, smoothscan.ExecStats, *smoothscan.Plan, smoothscan.IOStats) {
		before := db.Stats()
		rows, err := db.Query("t").Where("val", smoothscan.Between(10, 20)).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]int64
		for rows.Next() {
			r := rows.Row()
			out = append(out, append([]int64(nil), r...))
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
		st := rows.ExecStats()
		plan := rows.Plan()
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		return out, st, plan, db.Stats().Sub(before)
	}

	r1, st1, p1, _ := run()
	if st1.ResultCache.Hit {
		t.Fatal("first run reported a cache hit")
	}
	if p1.CachedResult {
		t.Fatal("first run's plan marked CachedResult")
	}
	if len(r1) == 0 {
		t.Fatal("empty baseline result")
	}

	r2, st2, p2, dev2 := run()
	if !st2.ResultCache.Hit {
		t.Fatalf("repeat run missed: %+v (cache %+v)", st2.ResultCache, db.ResultCacheStats())
	}
	// The acceptance bar: a served execution performs exactly zero
	// device I/O, at both the ExecStats and the device-counter level.
	if st2.IO.Requests != 0 || st2.IO.PagesRead != 0 || st2.IO.IOTime != 0 {
		t.Fatalf("cache hit performed I/O per ExecStats: %+v", st2.IO)
	}
	if dev2.Requests != 0 || dev2.PagesRead != 0 {
		t.Fatalf("cache hit touched the device: %+v", dev2)
	}
	if st2.ResultCache.Bytes <= 0 || st2.ResultCache.Age < 0 {
		t.Fatalf("hit metadata not populated: %+v", st2.ResultCache)
	}
	if !p2.CachedResult {
		t.Fatal("hit's plan not marked CachedResult")
	}
	if !strings.Contains(p2.String(), "served from result cache") {
		t.Fatalf("plan rendering missing cache marker:\n%s", p2)
	}
	if len(r1) != len(r2) {
		t.Fatalf("row count drifted: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		for j := range r1[i] {
			if r1[i][j] != r2[i][j] {
				t.Fatalf("row %d differs between executions", i)
			}
		}
	}

	// A write to the read table invalidates; the next run re-executes
	// and sees the new row, then re-caches.
	if err := db.Insert("t", 100000, 15); err != nil {
		t.Fatal(err)
	}
	r3, st3, _, _ := run()
	if st3.ResultCache.Hit {
		t.Fatal("post-insert run served a stale entry")
	}
	if len(r3) != len(r1)+1 {
		t.Fatalf("post-insert rows %d, want %d", len(r3), len(r1)+1)
	}
	_, st4, _, _ := run()
	if !st4.ResultCache.Hit {
		t.Fatal("re-cache after invalidation failed")
	}

	// ColdCache purges the tier along with the buffer pool.
	if err := db.ColdCache(); err != nil {
		t.Fatal(err)
	}
	_, st5, _, _ := run()
	if st5.ResultCache.Hit {
		t.Fatal("run after ColdCache served a cached result")
	}

	cs := db.ResultCacheStats()
	if cs.Hits < 2 || cs.Stores < 2 || cs.InvalidatedStale < 1 {
		t.Fatalf("implausible counters: %+v", cs)
	}
}

// TestResultCacheAdhocPreparedShared pins the semantic-keying
// contract: an ad-hoc query with inline literals and a prepared
// statement bound to the same values share one entry, in either
// population order.
func TestResultCacheAdhocPreparedShared(t *testing.T) {
	db, err := loadgen.BuildDB(4000, 500, 11, smoothscan.Options{PoolPages: 128, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Ad-hoc populates; the prepared statement's first run hits.
	cur, err := db.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(40, 60)).Run(ctx)
	n1, st1 := drainCount(t, cur, err)
	if st1.ResultCache.Hit {
		t.Fatal("populating ad-hoc run hit")
	}
	stmt, err := db.Prepare(db.Query(loadgen.Table).Where(loadgen.IndexedCol,
		smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))))
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	cur, err = stmt.Run(ctx, smoothscan.Bind{"lo": 40, "hi": 60})
	n2, st2 := drainCount(t, cur, err)
	if !st2.ResultCache.Hit {
		t.Fatalf("prepared run with ad-hoc's values missed: %+v", db.ResultCacheStats())
	}
	if n1 != n2 {
		t.Fatalf("shared entry served %d rows to prepared, ad-hoc saw %d", n2, n1)
	}

	// The reverse: prepared populates a different range; ad-hoc hits.
	cur, err = stmt.Run(ctx, smoothscan.Bind{"lo": 200, "hi": 230})
	if _, st := drainCount(t, cur, err); st.ResultCache.Hit {
		t.Fatal("populating prepared run hit")
	}
	cur, err = db.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(200, 230)).Run(ctx)
	n4, st4 := drainCount(t, cur, err)
	if !st4.ResultCache.Hit {
		t.Fatalf("ad-hoc run with prepared's values missed: %+v", db.ResultCacheStats())
	}
	cur, err = stmt.Run(ctx, smoothscan.Bind{"lo": 200, "hi": 230})
	n3, st3 := drainCount(t, cur, err)
	if !st3.ResultCache.Hit || n3 != n4 {
		t.Fatalf("prepared re-run: hit=%v rows=%d want %d", st3.ResultCache.Hit, n3, n4)
	}

	// Different bind values are a different key.
	cur, err = stmt.Run(ctx, smoothscan.Bind{"lo": 40, "hi": 61})
	if _, st := drainCount(t, cur, err); st.ResultCache.Hit {
		t.Fatal("distinct bind values shared an entry")
	}

	// Comparison spellings that fold to the same half-open range share
	// an entry: Eq(x) is Between(x, x+1).
	cur, err = db.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Eq(250)).Run(ctx)
	if _, st := drainCount(t, cur, err); st.ResultCache.Hit {
		t.Fatal("populating Eq run hit")
	}
	cur, err = db.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(250, 251)).Run(ctx)
	if _, st := drainCount(t, cur, err); !st.ResultCache.Hit {
		t.Fatalf("Between(x, x+1) did not share Eq(x)'s entry: %+v", db.ResultCacheStats())
	}
}

// TestResultCacheSharded exercises the coordinator-level tier: a hit
// is served above scatter-gather and touches no shard device, a write
// routed to any shard invalidates (epoch = sum of shard epochs), and
// the prepared path shares entries with ad-hoc just as locally.
func TestResultCacheSharded(t *testing.T) {
	s, err := smoothscan.OpenSharded(3, smoothscan.Options{PoolPages: 64, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tb, err := s.CreateShardedTable("ev", smoothscan.HashPartitioning("id", 3), "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3000; i++ {
		if err := tb.Append(i, i%97); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	run := func() (int, smoothscan.ExecStats, smoothscan.IOStats) {
		before := s.Stats()
		cur, err := s.Query("ev").Where("val", smoothscan.Between(10, 20)).Run(ctx)
		n, st := drainCount(t, cur, err)
		return n, st, s.Stats().Sub(before)
	}

	n1, st1, _ := run()
	if st1.ResultCache.Hit {
		t.Fatal("first run hit")
	}
	n2, st2, io2 := run()
	if !st2.ResultCache.Hit {
		t.Fatalf("repeat run missed: %+v", s.ResultCacheStats())
	}
	if io2.Requests != 0 || io2.PagesRead != 0 {
		t.Fatalf("coordinator hit touched a shard device: %+v", io2)
	}
	if n1 != n2 {
		t.Fatalf("row count drifted: %d vs %d", n1, n2)
	}

	if err := s.Insert("ev", 9999, 15); err != nil {
		t.Fatal(err)
	}
	n3, st3, _ := run()
	if st3.ResultCache.Hit {
		t.Fatal("post-insert run served a stale entry")
	}
	if n3 != n1+1 {
		t.Fatalf("post-insert rows %d, want %d", n3, n1+1)
	}
	n4, st4, _ := run()
	if !st4.ResultCache.Hit || n4 != n3 {
		t.Fatalf("re-cache failed: hit=%v rows=%d", st4.ResultCache.Hit, n4)
	}

	// Prepared sharing through the sharded front, and the plan marker.
	stmt, err := s.Prepare(s.Query("ev").Where("val",
		smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))))
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	cur, err := stmt.Run(ctx, smoothscan.Bind{"lo": 30, "hi": 40})
	if _, st := drainCount(t, cur, err); st.ResultCache.Hit {
		t.Fatal("populating prepared run hit")
	}
	pr, err := stmt.Run(ctx, smoothscan.Bind{"lo": 30, "hi": 40})
	if err != nil {
		t.Fatal(err)
	}
	for pr.Next() {
	}
	if pr.Err() != nil {
		t.Fatal(pr.Err())
	}
	if !pr.ExecStats().ResultCache.Hit {
		t.Fatal("repeat prepared run missed")
	}
	plan, err := pr.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if err := pr.Close(); err != nil {
		t.Fatal(err)
	}
	if plan == nil || !plan.CachedResult {
		t.Fatalf("sharded plan not marked cached:\n%v", plan)
	}
	if !strings.Contains(plan.String(), "served from result cache") {
		t.Fatalf("sharded plan rendering missing cache marker:\n%s", plan)
	}
}

// TestResultCacheRemote pins hit parity across the wire: when the
// server runs with the tier enabled, a remote client's repeat query
// sees ResultCache.Hit with a zero-I/O summary, and the cache
// counters surface through ServerStats.
func TestResultCacheRemote(t *testing.T) {
	db, err := loadgen.BuildDB(4000, 500, 13, smoothscan.Options{PoolPages: 128, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := ssclient.Dial(srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	run := func() (int, smoothscan.ExecStats) {
		cur, err := c.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(70, 90)).Run(ctx)
		return drainCount(t, cur, err)
	}
	n1, st1 := run()
	if st1.ResultCache.Hit {
		t.Fatal("first remote run hit")
	}
	n2, st2 := run()
	if !st2.ResultCache.Hit {
		t.Fatalf("repeat remote run missed: %+v", st2.ResultCache)
	}
	if st2.IO.Requests != 0 || st2.IO.PagesRead != 0 {
		t.Fatalf("remote hit's summary reports device I/O: %+v", st2.IO)
	}
	if st2.ResultCache.Bytes <= 0 {
		t.Fatalf("remote hit metadata not carried over the wire: %+v", st2.ResultCache)
	}
	if n1 != n2 {
		t.Fatalf("row count drifted across the wire: %d vs %d", n1, n2)
	}

	ss, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	if ss.ResultCacheHits < 1 || ss.ResultCacheEntries < 1 || ss.ResultCacheBytes <= 0 {
		t.Fatalf("ServerStats cache counters not populated: hits=%d entries=%d bytes=%d",
			ss.ResultCacheHits, ss.ResultCacheEntries, ss.ResultCacheBytes)
	}
}

// TestResultCacheDisabledIdentity pins that the default configuration
// (ResultCacheBytes == 0) never reports hits, never populates the
// counters, and never marks a plan cached — the observable face of
// the byte-identical guarantee `make equiv` enforces end to end.
func TestResultCacheDisabledIdentity(t *testing.T) {
	db, err := loadgen.BuildDB(4000, 500, 17, smoothscan.Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var counts [2]int
	for i := 0; i < 2; i++ {
		rows, err := db.Query(loadgen.Table).Where(loadgen.IndexedCol, smoothscan.Between(10, 30)).Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
			counts[i]++
		}
		if rows.Err() != nil {
			t.Fatal(rows.Err())
		}
		st := rows.ExecStats()
		plan := rows.Plan()
		rows.Close()
		if st.ResultCache.Hit || st.ResultCache.Bytes != 0 || st.ResultCache.Age != 0 {
			t.Fatalf("run %d reported cache activity while disabled: %+v", i, st.ResultCache)
		}
		if plan.CachedResult || strings.Contains(plan.String(), "served from result cache") {
			t.Fatalf("run %d plan marked cached while disabled", i)
		}
	}
	if counts[0] != counts[1] {
		t.Fatalf("row counts differ: %d vs %d", counts[0], counts[1])
	}
	if cs := db.ResultCacheStats(); cs != (smoothscan.ResultCacheStats{}) {
		t.Fatalf("disabled tier accumulated counters: %+v", cs)
	}
}

// raceEngine is the surface the invalidation-race harness needs: the
// uniform Engine plus the write entry point, satisfied by *DB and
// *ShardedDB.
type raceEngine interface {
	smoothscan.Engine
	Insert(table string, vals ...int64) error
}

// runInvalidationRace drives concurrent readers against a writer and
// checks the tier's core invariant: once an Insert has returned, no
// subsequent Run may be served a pre-write result. The writer
// publishes its progress only after each Insert returns; every reader
// snapshots that count before opening its cursor, so a result with
// fewer than base+snapshot matching rows can only mean a stale cache
// entry was served. Run with -race, which also patrols the entry
// bookkeeping under contention. mkRow builds a full-width row (with
// "val" inside the queried [10, 20] range) for the given fresh id.
func runInvalidationRace(t *testing.T, e raceEngine, table string, mkRow func(id int64) []int64) {
	ctx := context.Background()
	const inserts = 24
	const readers = 3

	count := func() int {
		cur, err := e.Table(table).Where("val", smoothscan.Between(10, 20)).Run(ctx)
		n, _ := drainCount(t, cur, err)
		return n
	}
	base := count()
	if base == 0 {
		t.Fatal("empty baseline")
	}

	var landed atomic.Int64 // inserts fully returned
	var done atomic.Bool
	errc := make(chan error, 1)
	go func() {
		defer done.Store(true)
		for i := int64(0); i < inserts; i++ {
			if err := e.Insert(table, mkRow(1_000_000+i)...); err != nil {
				select {
				case errc <- err:
				default:
				}
				return
			}
			landed.Add(1)
		}
	}()

	read := func() {
		floor := int(landed.Load())
		if got := count(); got < base+floor {
			t.Errorf("stale result: %d rows, but %d inserts had returned (floor %d)",
				got, floor, base+floor)
		}
	}
	doneReading := make(chan struct{})
	for r := 0; r < readers; r++ {
		go func() {
			defer func() { doneReading <- struct{}{} }()
			for !done.Load() {
				read()
			}
			read() // one pass after the writer finished
		}()
	}
	for r := 0; r < readers; r++ {
		<-doneReading
	}
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if got := count(); got != base+inserts {
		t.Fatalf("final count %d, want %d", got, base+inserts)
	}
}

// TestResultCacheInvalidationRaceLocal runs the Run-vs-Insert race
// against the local tier.
func TestResultCacheInvalidationRaceLocal(t *testing.T) {
	db, err := loadgen.BuildDB(2000, 100, 19, smoothscan.Options{PoolPages: 128, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	runInvalidationRace(t, db, loadgen.Table, func(id int64) []int64 {
		// loadgen rows are (id, val, p1..p8).
		return []int64{id, 15, 0, 0, 0, 0, 0, 0, 0, 0}
	})
}

// TestResultCacheInvalidationRaceSharded runs the same race against
// the coordinator tier, where invalidation flows through the
// sum-of-shard-epochs view and the write lands on one shard only.
func TestResultCacheInvalidationRaceSharded(t *testing.T) {
	s, err := smoothscan.OpenSharded(3, smoothscan.Options{PoolPages: 64, ResultCacheBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	tb, err := s.CreateShardedTable("ev", smoothscan.HashPartitioning("id", 3), "id", "val")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 2000; i++ {
		if err := tb.Append(i, i%97); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	runInvalidationRace(t, s, "ev", func(id int64) []int64 {
		return []int64{id, 15}
	})
}
