package smoothscan

import (
	"context"

	"smoothscan/internal/rescache"
)

// Coordinator-level result caching: the sharded engine carries its own
// rescache tier above scatter-gather, so a repeated sharded query is
// served from the coordinator's memory without touching any shard —
// no gather, no per-shard cursors, no device or network traffic. The
// per-shard slices still flow through each shard DB's own tier (the
// same Options configure both), so a coordinator miss can still be
// assembled from per-shard hits.
//
// Epochs at this level are the sum of the shard epochs for each table:
// every Insert routes to exactly one shard and bumps that shard's
// table epoch under its lock, so the sum is monotonic and moves on
// every write regardless of which shard took it. A remote topology's
// planning mirrors hold no rows and the coordinator refuses mutations,
// so its epochs are static — consistent with the open-time catalog
// snapshot the coordinator already treats as the data's state.

// initResultCache installs the coordinator tier; a helper so the open
// paths (OpenSharded, OpenShardedRemote) need no rescache import.
func (s *ShardedDB) initResultCache(opts Options) {
	s.resCache = rescache.New(opts.ResultCacheBytes, opts.ResultCacheTTL)
}

// ResultCacheStats snapshots the coordinator-level result-cache tier's
// counters (zero when the tier is disabled). Per-shard tiers are
// reachable via Shard(i).ResultCacheStats().
func (s *ShardedDB) ResultCacheStats() ResultCacheStats { return s.resCache.Stats() }

// epochOf sums the named table's write epoch across shards — the
// coordinator tier's invalidation clock. Each shard's epoch is read
// under its own lock; the sum is monotonic because shard epochs only
// ever increase.
func (s *ShardedDB) epochOf(name string) uint64 {
	var sum uint64
	for _, db := range s.shards {
		db.mu.RLock()
		sum += db.epochOfLocked(name)
		db.mu.RUnlock()
	}
	return sum
}

// epochsFor captures the coordinator epochs of every table the
// compiled query reads, keyed like cq0.resEpochs. Must be called
// before the gather starts so a write interleaving with the scan
// fails the store-time re-check.
func (s *ShardedDB) epochsFor(cq0 *compiledQuery) map[string]uint64 {
	eps := make(map[string]uint64, len(cq0.resEpochs))
	for name := range cq0.resEpochs {
		eps[name] = s.epochOf(name)
	}
	return eps
}

// cacheableSharded reports whether this sharded execution participates
// in the coordinator tier. Beyond the local rules (tier enabled, key
// derived, no empty short-circuit), any shard carrying a fault policy
// bypasses — degraded shard runs may skip corrupted pages, and a
// partial result must never be pinned. A remote broadcast join also
// bypasses: its replicated side drains through cursors whose
// degradation state the coordinator cannot observe.
func (s *ShardedDB) cacheableSharded(se *shardExec) bool {
	if s.resCache == nil || se.cq0.resKey == "" || se.emptyWhy != "" {
		return false
	}
	for _, db := range s.shards {
		if db.dev.FaultPolicy() != nil {
			return false
		}
	}
	if s.remote && se.strategy == strategyBroadcast {
		return false
	}
	return true
}

// serveShardedCached opens a ShardedRows over a coordinator-tier hit:
// a pure in-memory drain of the materialized result, with every shard
// left untouched.
func (s *ShardedDB) serveShardedCached(ctx context.Context, se *shardExec, v rescache.View, planCached bool) *ShardedRows {
	se.cq0.cacheServed = true
	c := &opCounter{name: "result-cache"}
	op := &countedOp{inner: newCachedOp(se.out, v), c: c}
	_ = op.Open() // cachedOp.Open cannot fail
	sr := &ShardedRows{
		s:          s,
		se:         se,
		op:         op,
		schema:     se.out,
		ctx:        ctx,
		counters:   []*opCounter{c},
		planCached: planCached,
		cacheHit:   true,
		cacheBytes: v.Bytes,
		cacheAge:   v.Age,
	}
	sr.ioStart = make([]IOStats, len(s.shards))
	for i, db := range s.shards {
		sr.ioStart[i] = db.dev.Stats()
	}
	return sr
}

// storeEligible reports whether a drained sharded execution's result
// may enter the coordinator cache: fully drained, error-free, and no
// shard unavailable or degraded (a gather that lost or degraded a
// shard delivered a best-effort result, not the query's answer).
func (r *ShardedRows) storeEligible() bool {
	if !r.done || r.err != nil {
		return false
	}
	for _, a := range r.adapters {
		if a.unavailable {
			return false
		}
		if a.cur == nil {
			continue
		}
		if st, ok := a.cur.execStats(); ok && len(st.Degraded) > 0 {
			return false
		}
	}
	return true
}

// storeShardedResult admits a drained sharded result, re-checking the
// coordinator epochs first — a write that routed to any shard during
// the gather moves the sum and the entry would be born stale.
func (s *ShardedDB) storeShardedResult(a *resAccum) {
	if a.overflow || s.resCache == nil {
		return
	}
	for name, ep := range a.epochs {
		if s.epochOf(name) != ep {
			return
		}
	}
	s.resCache.Store(a.key, a.flat, a.rows, a.width, a.epochs)
}
