package smoothscan

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------------

const (
	gridRowCount = 9000
	gridDomain   = 3000
)

// gridTableRows generates the deterministic grid fixture: id (dense,
// unique), val (uniform, indexed, the partition column), g (low
// cardinality, for grouping), p (payload).
func gridTableRows() [][]int64 {
	rng := rand.New(rand.NewSource(97))
	rows := make([][]int64, gridRowCount)
	for i := range rows {
		val := rng.Int63n(gridDomain)
		rows[i] = []int64{int64(i), val, val % 16, rng.Int63n(1_000_000)}
	}
	return rows
}

func loadGridTable(t testing.TB, tb *TableBuilder) {
	t.Helper()
	for _, r := range gridTableRows() {
		if err := tb.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
}

func loadShardedGridTable(t testing.TB, tb *ShardedTableBuilder) {
	t.Helper()
	for _, r := range gridTableRows() {
		if err := tb.Append(r...); err != nil {
			t.Fatal(err)
		}
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
}

func buildGridUnsharded(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := db.CreateTable("t", "id", "val", "g", "p")
	if err != nil {
		t.Fatal(err)
	}
	loadGridTable(t, tb)
	if err := db.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	if err := db.Analyze("t", "val"); err != nil {
		t.Fatal(err)
	}
	return db
}

func gridPartitioning(scheme string, n int) Partitioning {
	if scheme == "hash" {
		return HashPartitioning("val", n)
	}
	return RangePartitioning("val", EqualWidthBounds(0, gridDomain, n)...)
}

func buildGridSharded(t testing.TB, n int, scheme string) *ShardedDB {
	t.Helper()
	s, err := OpenSharded(n, Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.CreateShardedTable("t", gridPartitioning(scheme, n), "id", "val", "g", "p")
	if err != nil {
		t.Fatal(err)
	}
	loadShardedGridTable(t, tb)
	if err := s.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	if err := s.Analyze("t", "val"); err != nil {
		t.Fatal(err)
	}
	return s
}

// shardedIter is the common drain surface of *Rows and *ShardedRows.
type shardedIter interface {
	Next() bool
	Row() []int64
	Err() error
	Close() error
	ExecStats() ExecStats
}

// drainStats runs an iterator to completion, closes it, and returns
// the rows plus the final (frozen) execution stats.
func drainStats(t testing.TB, it shardedIter, err error) ([][]int64, ExecStats) {
	t.Helper()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var out [][]int64
	for it.Next() {
		out = append(out, it.Row())
	}
	if e := it.Err(); e != nil {
		it.Close()
		t.Fatalf("iterate: %v", e)
	}
	if e := it.Close(); e != nil {
		t.Fatalf("close: %v", e)
	}
	return out, it.ExecStats()
}

// ---------------------------------------------------------------------------
// Equivalence grid
// ---------------------------------------------------------------------------

// shardCase is one query shape expressed against both engines. exact
// cases compare row sequences; the rest compare multisets (an
// unordered gather interleaves shards nondeterministically).
type shardCase struct {
	name  string
	exact bool
	un    func(db *DB) *Query
	sh    func(s *ShardedDB) *ShardedQuery
}

func shardGridCases() []shardCase {
	return []shardCase{
		{"smooth", false,
			func(db *DB) *Query { return db.Query("t").Where("val", Between(600, 1200)) },
			func(s *ShardedDB) *ShardedQuery { return s.Query("t").Where("val", Between(600, 1200)) }},
		{"index", false,
			func(db *DB) *Query {
				return db.Query("t").Where("val", Between(100, 220)).WithOptions(ScanOptions{Path: PathIndex})
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Between(100, 220)).WithOptions(ScanOptions{Path: PathIndex})
			}},
		{"full", false,
			func(db *DB) *Query {
				return db.Query("t").Where("val", Ge(2500)).WithOptions(ScanOptions{Path: PathFull})
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Ge(2500)).WithOptions(ScanOptions{Path: PathFull})
			}},
		{"parallel", false,
			func(db *DB) *Query {
				return db.Query("t").Where("val", Between(0, 2000)).WithOptions(ScanOptions{Path: PathFull, Parallelism: 4})
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Between(0, 2000)).WithOptions(ScanOptions{Path: PathFull, Parallelism: 4})
			}},
		{"parallel-smooth", false,
			func(db *DB) *Query {
				return db.Query("t").Where("val", Between(400, 1800)).WithOptions(ScanOptions{Parallelism: 4})
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Between(400, 1800)).WithOptions(ScanOptions{Parallelism: 4})
			}},
		{"ordered", true,
			func(db *DB) *Query { return db.Query("t").Where("val", Between(600, 1200)).OrderBy("id") },
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Between(600, 1200)).OrderBy("id")
			}},
		{"select", false,
			func(db *DB) *Query { return db.Query("t").Select("val", "p").Where("val", Ge(2000)) },
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Select("val", "p").Where("val", Ge(2000))
			}},
		{"agg", true,
			func(db *DB) *Query {
				return db.Query("t").GroupBy("g", Count(), Sum("p"), Min("val"), Max("val"))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").GroupBy("g", Count(), Sum("p"), Min("val"), Max("val"))
			}},
		{"agg-where-ord", true,
			func(db *DB) *Query {
				return db.Query("t").Where("val", Between(300, 2400)).GroupBy("g", Sum("p")).OrderBy("g")
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Between(300, 2400)).GroupBy("g", Sum("p")).OrderBy("g")
			}},
		{"topn", true,
			func(db *DB) *Query { return db.Query("t").Where("val", Ge(1000)).OrderBy("id").Limit(53) },
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("t").Where("val", Ge(1000)).OrderBy("id").Limit(53)
			}},
		{"empty-range", true,
			func(db *DB) *Query { return db.Query("t").Where("val", Between(500, 500)) },
			func(s *ShardedDB) *ShardedQuery { return s.Query("t").Where("val", Between(500, 500)) }},
	}
}

func TestShardedEquivalenceGrid(t *testing.T) {
	un := buildGridUnsharded(t)
	ctx := context.Background()
	for _, n := range []int{1, 2, 4, 7} {
		for _, scheme := range []string{"range", "hash"} {
			s := buildGridSharded(t, n, scheme)
			for _, c := range shardGridCases() {
				c := c
				t.Run(strings.Join([]string{scheme, "N" + itoa(n), c.name}, "/"), func(t *testing.T) {
					rows, err := c.un(un).Run(ctx)
					want, _ := drainStats(t, rows, err)
					srows, serr := c.sh(s).Run(ctx)
					got, _ := drainStats(t, srows, serr)
					if !c.exact {
						sortRows(want)
						sortRows(got)
					}
					if !rowsEqual(got, want) {
						t.Fatalf("sharded result diverges: got %d rows, want %d", len(got), len(want))
					}
				})
			}
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

// TestShardedLimitUnordered pins the weaker contract of Limit without
// OrderBy: the sharded result is SOME n matching rows (which n rows
// arrive depends on shard interleaving), never more, never wrong ones.
func TestShardedLimitUnordered(t *testing.T) {
	un := buildGridUnsharded(t)
	s := buildGridSharded(t, 4, "range")
	ctx := context.Background()

	rows, err := un.Query("t").Where("val", Between(600, 1200)).Run(ctx)
	full, _ := drainStats(t, rows, err)
	valid := make(map[int64]bool, len(full))
	for _, r := range full {
		valid[r[0]] = true
	}

	srows, serr := s.Query("t").Where("val", Between(600, 1200)).Limit(37).Run(ctx)
	got, _ := drainStats(t, srows, serr)
	if len(got) != 37 {
		t.Fatalf("Limit(37) returned %d rows", len(got))
	}
	seen := make(map[int64]bool)
	for _, r := range got {
		if !valid[r[0]] {
			t.Fatalf("limited result contains non-matching row id=%d", r[0])
		}
		if seen[r[0]] {
			t.Fatalf("limited result repeats row id=%d", r[0])
		}
		seen[r[0]] = true
	}
}

// ---------------------------------------------------------------------------
// N=1 cost identity
// ---------------------------------------------------------------------------

// TestShardedN1CostIdentity pins the degenerate case: with one shard,
// every query shape produces the same rows AND the same device-counter
// delta as the unsharded engine — the scatter-gather layer adds zero
// simulated cost. (parallel-smooth is compared by rows only: a
// parallel smooth scan's pool-hit pattern depends on worker
// interleaving, so its I/O is not run-to-run deterministic even
// unsharded.)
func TestShardedN1CostIdentity(t *testing.T) {
	un := buildGridUnsharded(t)
	s := buildGridSharded(t, 1, "range")
	ctx := context.Background()
	for _, c := range shardGridCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			if err := un.ColdCache(); err != nil {
				t.Fatal(err)
			}
			if err := s.ColdCache(); err != nil {
				t.Fatal(err)
			}
			rows, err := c.un(un).Run(ctx)
			want, wes := drainStats(t, rows, err)
			srows, serr := c.sh(s).Run(ctx)
			got, ges := drainStats(t, srows, serr)
			if !c.exact {
				// Unordered shapes (notably the parallel fan-ins)
				// have scheduling-dependent sequences in both
				// engines; compare as multisets.
				sortRows(want)
				sortRows(got)
			}
			if !rowsEqual(got, want) {
				t.Fatalf("N=1 rows diverge: got %d rows, want %d", len(got), len(want))
			}
			if c.name != "parallel-smooth" && !ioApproxEqual(wes.IO, ges.IO) {
				t.Errorf("N=1 device delta diverges:\nunsharded %+v\nsharded   %+v", wes.IO, ges.IO)
			}
		})
	}
}

// ioApproxEqual compares device deltas: counters exactly, the two
// simulated clocks within float rounding (deltas subtract different
// accumulated histories, so the last ulp can differ).
func ioApproxEqual(a, b IOStats) bool {
	af, bf := a, b
	af.IOTime, af.CPUTime = 0, 0
	bf.IOTime, bf.CPUTime = 0, 0
	if af != bf {
		return false
	}
	near := func(x, y float64) bool {
		d := x - y
		if d < 0 {
			d = -d
		}
		return d <= 1e-6*(1+x+y)
	}
	return near(a.IOTime, b.IOTime) && near(a.CPUTime, b.CPUTime)
}

// ---------------------------------------------------------------------------
// Pruning
// ---------------------------------------------------------------------------

func TestShardedPruningZeroDeviceIO(t *testing.T) {
	un := buildGridUnsharded(t)
	s := buildGridSharded(t, 4, "range") // bounds 750, 1500, 2250
	ctx := context.Background()

	rows, err := un.Query("t").Where("val", Between(800, 1400)).Run(ctx)
	want, _ := drainStats(t, rows, err)

	srows, serr := s.Query("t").Where("val", Between(800, 1400)).Run(ctx)
	got, es := drainStats(t, srows, serr)
	sortRows(want)
	sortRows(got)
	if !rowsEqual(got, want) {
		t.Fatalf("pruned query diverges: got %d rows, want %d", len(got), len(want))
	}

	if len(es.Shards) != 4 {
		t.Fatalf("ShardStats has %d entries, want 4", len(es.Shards))
	}
	var zero IOStats
	for i, sh := range es.Shards {
		if i == 1 {
			if sh.Pruned {
				t.Errorf("shard 1 owns [750,1500) and must run; pruned with %q", sh.PrunedWhy)
			}
			if sh.IO == zero {
				t.Errorf("shard 1 ran but reports zero device I/O")
			}
			if sh.Rows != int64(len(want)) {
				t.Errorf("shard 1 delivered %d rows, want %d", sh.Rows, len(want))
			}
			continue
		}
		if !sh.Pruned {
			t.Errorf("shard %d (%s) must be pruned by val in [800,1400)", i, sh.Owns)
		}
		if sh.PrunedWhy == "" {
			t.Errorf("shard %d pruned without a reason", i)
		}
		if sh.IO != zero {
			t.Errorf("pruned shard %d performed device I/O: %+v", i, sh.IO)
		}
	}
}

func TestShardedEmptyShard(t *testing.T) {
	// Data lives in val ∈ [0, 3000) but the partitioning reserves two
	// shards for [6000, +inf): they are active (nothing prunes them)
	// yet hold zero rows, and the gather must not stall on them.
	un := buildGridUnsharded(t)
	s, err := OpenSharded(4, Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := s.CreateShardedTable("t", RangePartitioning("val", 1500, 6000, 9000), "id", "val", "g", "p")
	if err != nil {
		t.Fatal(err)
	}
	loadShardedGridTable(t, tb)
	if err := s.CreateIndex("t", "val"); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rows, err := un.Query("t").Run(ctx)
	want, _ := drainStats(t, rows, err)
	srows, serr := s.Query("t").OrderBy("id").Run(ctx)
	got, es := drainStats(t, srows, serr)
	sortRows(want) // got is ordered by unique id == sorted by every col prefix
	if !rowsEqual(got, want) {
		t.Fatalf("empty-shard scan diverges: got %d rows, want %d", len(got), len(want))
	}
	for _, i := range []int{2, 3} {
		if es.Shards[i].Pruned {
			t.Errorf("shard %d is empty but not pruned-eligible; it must still run", i)
		}
		if es.Shards[i].Rows != 0 {
			t.Errorf("empty shard %d delivered %d rows", i, es.Shards[i].Rows)
		}
	}
}

func TestShardedShortCircuits(t *testing.T) {
	s := buildGridSharded(t, 4, "range")
	ctx := context.Background()
	var zero IOStats

	check := func(t *testing.T, sq *ShardedQuery, wantWhy string) {
		t.Helper()
		rows, err := sq.Run(ctx)
		got, es := drainStats(t, rows, err)
		if len(got) != 0 {
			t.Fatalf("short-circuited query returned %d rows", len(got))
		}
		if es.IO != zero {
			t.Errorf("short-circuited query performed device I/O: %+v", es.IO)
		}
		for i, sh := range es.Shards {
			if !sh.Pruned {
				t.Errorf("shard %d not pruned on a short-circuited query", i)
			}
		}
		sp, err := sq.Explain()
		if err != nil {
			t.Fatal(err)
		}
		if sp.EmptyWhy == "" || !strings.Contains(sp.EmptyWhy, wantWhy) {
			t.Errorf("EmptyWhy = %q, want mention of %q", sp.EmptyWhy, wantWhy)
		}
	}

	t.Run("contradiction-partition-col", func(t *testing.T) {
		check(t, s.Query("t").Where("val", Ge(100)).Where("val", Lt(50)), "contradictory")
	})
	t.Run("contradiction-other-col", func(t *testing.T) {
		check(t, s.Query("t").Where("g", Ge(10)).Where("g", Lt(3)), "contradictory")
	})
	t.Run("limit-zero", func(t *testing.T) {
		check(t, s.Query("t").Where("val", Ge(0)).Limit(0), "LIMIT 0")
	})
	t.Run("all-shards-pruned", func(t *testing.T) {
		// val ∈ [9000, 9100) is outside every shard's data but inside
		// the last range — use a range beyond the data: every shard
		// with range partitioning still owns (-inf/+inf) tails, so
		// prune cannot empty the set. A hash point predicate can:
		sh := buildGridSharded(t, 4, "hash")
		rows, err := sh.Query("t").Where("val", Between(40, 40)).Run(ctx)
		got, es := drainStats(t, rows, err)
		if len(got) != 0 {
			t.Fatalf("empty-range query returned %d rows", len(got))
		}
		if es.IO != zero {
			t.Errorf("empty-range query performed device I/O: %+v", es.IO)
		}
	})
}

// ---------------------------------------------------------------------------
// Cancellation and goroutine hygiene
// ---------------------------------------------------------------------------

func TestShardedCancelMidGather(t *testing.T) {
	for _, mode := range []string{"fan-in", "merge"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			runtime.GC()
			base := runtime.NumGoroutine()

			s := buildGridSharded(t, 4, "range")
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			sq := s.Query("t").Where("val", Between(0, gridDomain))
			if mode == "merge" {
				sq = sq.OrderBy("id")
			}
			rows, err := sq.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 10 && rows.Next(); i++ {
			}
			cancel()
			for rows.Next() {
			}
			if err := rows.Err(); err != nil && !errors.Is(err, context.Canceled) {
				t.Errorf("post-cancel Err = %v, want context.Canceled or drained-nil", err)
			}
			_ = rows.Close()

			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > base {
				t.Errorf("goroutine leak after cancel+close: %d live, started with %d", n, base)
			}
		})
	}
}

func TestShardedPreCancelled(t *testing.T) {
	s := buildGridSharded(t, 2, "range")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Query("t").Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run on cancelled ctx = %v, want context.Canceled", err)
	}
}

// ---------------------------------------------------------------------------
// Prepared statements: bind-time re-pruning
// ---------------------------------------------------------------------------

func TestShardedStmtBindPruning(t *testing.T) {
	un := buildGridUnsharded(t)
	s := buildGridSharded(t, 4, "range")
	ctx := context.Background()

	stU, err := un.Prepare(un.Query("t").Where("val", Between(Param("lo"), Param("hi"))).OrderBy("id"))
	if err != nil {
		t.Fatal(err)
	}
	stS, err := s.Prepare(s.Query("t").Where("val", Between(Param("lo"), Param("hi"))).OrderBy("id"))
	if err != nil {
		t.Fatal(err)
	}

	activeShards := func(es ExecStats) int {
		n := 0
		for _, sh := range es.Shards {
			if !sh.Pruned {
				n++
			}
		}
		return n
	}

	cases := []struct {
		name   string
		b      Bind
		active int
	}{
		{"narrow-one-shard", Bind{"lo": 800, "hi": 1400}, 1},
		{"wide-all-shards", Bind{"lo": 0, "hi": gridDomain}, 4},
		{"two-shards", Bind{"lo": 800, "hi": 1600}, 2},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			rows, err := stU.Run(ctx, c.b)
			want, _ := drainStats(t, rows, err)
			srows, serr := stS.Run(ctx, c.b)
			got, es := drainStats(t, srows, serr)
			if !rowsEqual(got, want) {
				t.Fatalf("bind %v: got %d rows, want %d", c.b, len(got), len(want))
			}
			if n := activeShards(es); n != c.active {
				t.Errorf("bind %v ran %d shards, want %d", c.b, n, c.active)
			}
			if !es.PlanCacheHit {
				t.Errorf("prepared run not marked plan-cached")
			}
		})
	}

	t.Run("bind-errors", func(t *testing.T) {
		if _, err := stS.Run(ctx, Bind{"lo": 0}); !errors.Is(err, ErrUnboundParam) {
			t.Errorf("missing bind = %v, want ErrUnboundParam", err)
		}
		if _, err := stS.Run(ctx, Bind{"lo": 0, "hi": 10, "zzz": 1}); !errors.Is(err, ErrUnknownParam) {
			t.Errorf("extra bind = %v, want ErrUnknownParam", err)
		}
	})

	t.Run("explain-binds", func(t *testing.T) {
		sp, err := stS.Explain(Bind{"lo": 800, "hi": 1400})
		if err != nil {
			t.Fatal(err)
		}
		str := sp.String()
		if !strings.Contains(str, "$lo=800") {
			t.Errorf("stmt Explain misses bind annotation:\n%s", str)
		}
		pruned := 0
		for _, shp := range sp.Shards {
			if shp.Pruned {
				pruned++
			}
		}
		if pruned != 3 {
			t.Errorf("narrow bind prunes %d shards in Explain, want 3:\n%s", pruned, str)
		}
	})
}

func TestShardedStmtAggregateLimitParam(t *testing.T) {
	un := buildGridUnsharded(t)
	s := buildGridSharded(t, 4, "range")
	ctx := context.Background()

	// The per-shard statements drop OrderBy/Limit (partials are merged,
	// ordered and limited at the coordinator), so the $n parameter only
	// exists above the gather — filterBind must keep the sub-statements
	// happy.
	stU, err := un.Prepare(un.Query("t").Where("val", Between(Param("lo"), Param("hi"))).
		GroupBy("g", Count(), Sum("p")).OrderBy("g").Limit(Param("n")))
	if err != nil {
		t.Fatal(err)
	}
	stS, err := s.Prepare(s.Query("t").Where("val", Between(Param("lo"), Param("hi"))).
		GroupBy("g", Count(), Sum("p")).OrderBy("g").Limit(Param("n")))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []Bind{
		{"lo": 0, "hi": gridDomain, "n": 5},
		{"lo": 300, "hi": 2400, "n": 100},
		{"lo": 800, "hi": 1400, "n": 3},
		{"lo": 0, "hi": gridDomain, "n": 0},
	} {
		rows, err := stU.Run(ctx, b)
		want, _ := drainStats(t, rows, err)
		srows, serr := stS.Run(ctx, b)
		got, _ := drainStats(t, srows, serr)
		if !rowsEqual(got, want) {
			t.Fatalf("bind %v: got %d rows, want %d", b, len(got), len(want))
		}
	}
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

const (
	joinFactRowsN = 6000
	joinDimRowsN  = 500
	joinValDomain = 2000
)

func joinFactRows() [][]int64 {
	rng := rand.New(rand.NewSource(131))
	rows := make([][]int64, joinFactRowsN)
	for i := range rows {
		rows[i] = []int64{int64(i), rng.Int63n(joinDimRowsN), rng.Int63n(joinValDomain), rng.Int63n(1000)}
	}
	return rows
}

func joinDimRows() [][]int64 {
	rng := rand.New(rand.NewSource(137))
	rows := make([][]int64, joinDimRowsN)
	for i := range rows {
		rows[i] = []int64{int64(i), int64(i) % 8, rng.Int63n(100)}
	}
	return rows
}

func joinExtraRows() [][]int64 {
	rng := rand.New(rand.NewSource(139))
	rows := make([][]int64, joinDimRowsN)
	for i := range rows {
		rows[i] = []int64{int64(i), rng.Int63n(50)}
	}
	return rows
}

type tableSpec struct {
	name    string
	cols    []string
	rows    [][]int64
	indexes []string
}

func joinTableSpecs() []tableSpec {
	return []tableSpec{
		{"f", []string{"fid", "fkey", "fval", "fp"}, joinFactRows(), []string{"fkey", "fval"}},
		{"d", []string{"did", "cat", "w"}, joinDimRows(), []string{"did"}},
		{"e", []string{"eid", "ez"}, joinExtraRows(), []string{"eid"}},
	}
}

func buildJoinUnsharded(t testing.TB) *DB {
	t.Helper()
	db, err := Open(Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range joinTableSpecs() {
		tb, err := db.CreateTable(ts.name, ts.cols...)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ts.rows {
			if err := tb.Append(r...); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.Finish(); err != nil {
			t.Fatal(err)
		}
		for _, ix := range ts.indexes {
			if err := db.CreateIndex(ts.name, ix); err != nil {
				t.Fatal(err)
			}
		}
	}
	return db
}

// buildJoinSharded loads the three join tables, partitioned by the
// given per-table partitionings (keyed by table name).
func buildJoinSharded(t testing.TB, n int, parts map[string]Partitioning) *ShardedDB {
	t.Helper()
	s, err := OpenSharded(n, Options{PoolPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range joinTableSpecs() {
		tb, err := s.CreateShardedTable(ts.name, parts[ts.name], ts.cols...)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ts.rows {
			if err := tb.Append(r...); err != nil {
				t.Fatal(err)
			}
		}
		if err := tb.Finish(); err != nil {
			t.Fatal(err)
		}
		for _, ix := range ts.indexes {
			if err := s.CreateIndex(ts.name, ix); err != nil {
				t.Fatal(err)
			}
		}
	}
	return s
}

// pwParts co-partitions all three tables on the join keys (fkey = did
// = eid) with identical range bounds: every join stage runs
// partition-wise.
func pwParts(n int) map[string]Partitioning {
	b := EqualWidthBounds(0, joinDimRowsN, n)
	return map[string]Partitioning{
		"f": RangePartitioning("fkey", b...),
		"d": RangePartitioning("did", b...),
		"e": RangePartitioning("eid", b...),
	}
}

// bcParts partitions the fact table on a NON-join column: the f↔d join
// cannot run partition-wise and must broadcast one side.
func bcParts(n int) map[string]Partitioning {
	return map[string]Partitioning{
		"f": HashPartitioning("fval", n),
		"d": HashPartitioning("did", n),
		"e": HashPartitioning("eid", n),
	}
}

func TestShardedJoinEquivalence(t *testing.T) {
	un := buildJoinUnsharded(t)
	ctx := context.Background()

	cases := []shardCase{
		{"pw-hash", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900))
			}},
		{"pw-pruned", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("fkey", Between(100, 180))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("fkey", Between(100, 180))
			}},
		{"pw-merge", false,
			func(db *DB) *Query {
				return db.Query("f").JoinWithOptions("d", "fkey", "did", ScanOptions{Path: PathIndex}).
					Where("fkey", Between(0, joinDimRowsN)).WithOptions(ScanOptions{Path: PathIndex})
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").JoinWithOptions("d", "fkey", "did", ScanOptions{Path: PathIndex}).
					Where("fkey", Between(0, joinDimRowsN)).WithOptions(ScanOptions{Path: PathIndex})
			}},
		{"pw-agg", true,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").GroupBy("cat", Count(), Sum("w"))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").GroupBy("cat", Count(), Sum("w"))
			}},
		{"pw-3way", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Join("e", "fkey", "eid").Where("fval", Lt(400))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Join("e", "fkey", "eid").Where("fval", Lt(400))
			}},
		{"pw-ord", true,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900)).OrderBy("fid")
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900)).OrderBy("fid")
			}},
	}
	bcCases := []shardCase{
		{"bc", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900))
			}},
		{"bc-agg", true,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").GroupBy("cat", Count(), Sum("w"))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").GroupBy("cat", Count(), Sum("w"))
			}},
		{"bc-ord", true,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900)).OrderBy("fid")
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900)).OrderBy("fid")
			}},
		{"bc-sel", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Select("fid", "cat").Where("cat", Eq(3))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Select("fid", "cat").Where("cat", Eq(3))
			}},
		{"bc-dim-pruned", false,
			func(db *DB) *Query {
				return db.Query("f").Join("d", "fkey", "did").Where("did", Eq(7))
			},
			func(s *ShardedDB) *ShardedQuery {
				return s.Query("f").Join("d", "fkey", "did").Where("did", Eq(7))
			}},
	}

	for _, n := range []int{1, 2, 4, 7} {
		pw := buildJoinSharded(t, n, pwParts(n))
		bc := buildJoinSharded(t, n, bcParts(n))
		run := func(s *ShardedDB, c shardCase) {
			t.Run(strings.Join([]string{"N" + itoa(n), c.name}, "/"), func(t *testing.T) {
				rows, err := c.un(un).Run(ctx)
				want, _ := drainStats(t, rows, err)
				srows, serr := c.sh(s).Run(ctx)
				got, _ := drainStats(t, srows, serr)
				if !c.exact {
					sortRows(want)
					sortRows(got)
				}
				if !rowsEqual(got, want) {
					t.Fatalf("join result diverges: got %d rows, want %d", len(got), len(want))
				}
			})
		}
		for _, c := range cases {
			run(pw, c)
		}
		for _, c := range bcCases {
			run(bc, c)
		}
	}
}

func TestShardedJoinStrategies(t *testing.T) {
	pw := buildJoinSharded(t, 4, pwParts(4))
	bc := buildJoinSharded(t, 4, bcParts(4))
	ctx := context.Background()

	t.Run("partition-wise", func(t *testing.T) {
		sp, err := pw.Query("f").Join("d", "fkey", "did").Where("fkey", Between(100, 180)).Explain()
		if err != nil {
			t.Fatal(err)
		}
		if sp.Strategy != "partition-wise" {
			t.Errorf("co-partitioned join strategy = %q, want partition-wise", sp.Strategy)
		}
		pruned := 0
		for _, shp := range sp.Shards {
			if shp.Pruned {
				pruned++
			}
		}
		if pruned == 0 {
			t.Errorf("fkey ∈ [100,180) must prune some of 4 co-partitioned shards:\n%s", sp.String())
		}
	})

	t.Run("per-shard-merge-join", func(t *testing.T) {
		sp, err := pw.Query("f").JoinWithOptions("d", "fkey", "did", ScanOptions{Path: PathIndex}).
			Where("fkey", Between(0, joinDimRowsN)).WithOptions(ScanOptions{Path: PathIndex}).Explain()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, shp := range sp.Shards {
			if shp.Plan != nil && shp.Plan.Root != nil && shp.Plan.Root.Name == "merge-join" {
				found = true
			}
		}
		if !found {
			t.Errorf("no shard plans a merge-join under forced index paths:\n%s", sp.String())
		}
	})

	t.Run("broadcast", func(t *testing.T) {
		sp, err := bc.Query("f").Join("d", "fkey", "did").Where("fval", Between(200, 900)).Explain()
		if err != nil {
			t.Fatal(err)
		}
		if sp.Strategy != "broadcast" {
			t.Errorf("non-co-partitioned join strategy = %q, want broadcast", sp.Strategy)
		}
		if !strings.Contains(sp.String(), "broadcast") {
			t.Errorf("rendered plan misses the broadcast stage:\n%s", sp.String())
		}
	})

	t.Run("two-joins-not-copartitioned", func(t *testing.T) {
		_, err := bc.Query("f").Join("d", "fkey", "did").Join("e", "fkey", "eid").Run(ctx)
		if !errors.Is(err, ErrShardJoin) {
			t.Errorf("two non-co-partitioned joins = %v, want ErrShardJoin", err)
		}
	})

	t.Run("join-unsharded-table", func(t *testing.T) {
		for i := 0; i < pw.NumShards(); i++ {
			tb, err := pw.Shard(i).CreateTable("x", "xid", "xv")
			if err != nil {
				t.Fatal(err)
			}
			if err := tb.Append(int64(i), 1); err != nil {
				t.Fatal(err)
			}
			if err := tb.Finish(); err != nil {
				t.Fatal(err)
			}
		}
		_, err := pw.Query("f").Join("x", "fkey", "xid").Run(ctx)
		if !errors.Is(err, ErrNotSharded) {
			t.Errorf("join against unsharded table = %v, want ErrNotSharded", err)
		}
	})
}

// ---------------------------------------------------------------------------
// Surface errors and DDL validation
// ---------------------------------------------------------------------------

func TestShardedErrors(t *testing.T) {
	ctx := context.Background()
	if _, err := OpenSharded(0, Options{}); err == nil {
		t.Error("OpenSharded(0) must fail")
	}
	s, err := OpenSharded(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateShardedTable("x", HashPartitioning("a", 3), "a", "b"); err == nil {
		t.Error("partitioning N != shard count must fail")
	}
	if _, err := s.CreateShardedTable("x", HashPartitioning("z", 2), "a", "b"); err == nil {
		t.Error("partition column outside the table's columns must fail")
	}
	if _, err := s.CreateShardedTable("x", Partitioning{}, "a", "b"); err == nil {
		t.Error("invalid partitioning must fail")
	}

	// A table created per shard directly is not registered as sharded.
	for i := 0; i < 2; i++ {
		tb, err := s.Shard(i).CreateTable("plain", "a", "b")
		if err != nil {
			t.Fatal(err)
		}
		if err := tb.Append(int64(i), 2); err != nil {
			t.Fatal(err)
		}
		if err := tb.Finish(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Query("plain").Run(ctx); !errors.Is(err, ErrNotSharded) {
		t.Errorf("query of unsharded table = %v, want ErrNotSharded", err)
	}
	if _, err := s.Partitioning("plain"); !errors.Is(err, ErrNotSharded) {
		t.Errorf("Partitioning of unsharded table = %v, want ErrNotSharded", err)
	}
	if err := s.Insert("plain", 1, 2); !errors.Is(err, ErrNotSharded) {
		t.Errorf("Insert into unsharded table = %v, want ErrNotSharded", err)
	}

	// Builder errors propagate like Query's.
	tb, err := s.CreateShardedTable("t", HashPartitioning("a", 2), "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("t").Select("a").Select("b").Run(ctx); err == nil {
		t.Error("double Select must fail")
	}
	if _, err := s.Query("t").GroupBy("a").Run(ctx); err == nil {
		t.Error("GroupBy without aggregates must fail")
	}
	if _, err := s.Query("t").Limit(-1).Run(ctx); err == nil {
		t.Error("negative limit must fail")
	}
	if _, err := s.Query("t").Where("nope", Eq(1)).Run(ctx); !errors.Is(err, ErrUnknownColumn) {
		t.Error("unknown column must fail with ErrUnknownColumn")
	}
	if _, err := s.Prepare(nil); err == nil {
		t.Error("Prepare(nil) must fail")
	}
	other, err := OpenSharded(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Prepare(s.Query("t")); err == nil {
		t.Error("Prepare of a query from another database must fail")
	}
}

func TestShardedInsertAndShardRows(t *testing.T) {
	s := buildGridSharded(t, 4, "range")
	perShard, err := s.ShardRows("t")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for i, n := range perShard {
		if n == 0 {
			t.Errorf("shard %d holds no rows of a uniform load", i)
		}
		total += n
	}
	if got, err := s.NumRows("t"); err != nil || got != total {
		t.Fatalf("NumRows = %d (%v), want %d", got, err, total)
	}
	if total != gridRowCount {
		t.Fatalf("shards hold %d rows, want %d", total, gridRowCount)
	}

	// Insert routes to the owning shard: val=100 lands in shard 0
	// (bounds 750/1500/2250).
	if err := s.Insert("t", 1_000_000, 100, 4, 9); err != nil {
		t.Fatal(err)
	}
	after, err := s.ShardRows("t")
	if err != nil {
		t.Fatal(err)
	}
	if after[0] != perShard[0]+1 {
		t.Errorf("shard 0 rows %d → %d, want +1", perShard[0], after[0])
	}
	for i := 1; i < 4; i++ {
		if after[i] != perShard[i] {
			t.Errorf("shard %d rows changed %d → %d on a shard-0 insert", i, perShard[i], after[i])
		}
	}
}

// ---------------------------------------------------------------------------
// Explain rendering
// ---------------------------------------------------------------------------

func TestShardedExplainRendering(t *testing.T) {
	s := buildGridSharded(t, 4, "range")

	sp, err := s.Query("t").Where("val", Between(800, 1400)).OrderBy("id").Explain()
	if err != nil {
		t.Fatal(err)
	}
	if sp.Strategy != "scan" {
		t.Errorf("Strategy = %q, want scan", sp.Strategy)
	}
	if sp.Gather != "ordered merge by id" {
		t.Errorf("Gather = %q, want ordered merge by id", sp.Gather)
	}
	str := sp.String()
	for _, want := range []string{"strategy=scan", "range(val)", "pruned", "ordered merge by id"} {
		if !strings.Contains(str, want) {
			t.Errorf("rendered plan misses %q:\n%s", want, str)
		}
	}
	var active, pruned int
	for _, shp := range sp.Shards {
		if shp.Pruned {
			pruned++
			if shp.Plan != nil {
				t.Errorf("pruned shard %d carries a plan", shp.Shard)
			}
		} else {
			active++
			if shp.Plan == nil {
				t.Errorf("active shard %d has no plan", shp.Shard)
			}
		}
	}
	if active != 1 || pruned != 3 {
		t.Errorf("explain shows %d active / %d pruned shards, want 1/3:\n%s", active, pruned, str)
	}

	// Aggregates render the coordinator merge stage.
	sp, err = s.Query("t").GroupBy("g", Count()).Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sp.String(), "merge-agg") {
		t.Errorf("aggregate plan misses merge-agg stage:\n%s", sp.String())
	}

	// Rows.Plan returns the same plan lazily.
	rows, err := s.Query("t").Where("val", Between(800, 1400)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	rp, err := rows.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if rp.Strategy != "scan" {
		t.Errorf("Rows.Plan strategy = %q", rp.Strategy)
	}
}

// ---------------------------------------------------------------------------
// Column access on sharded rows
// ---------------------------------------------------------------------------

func TestShardedRowsColumns(t *testing.T) {
	s := buildGridSharded(t, 2, "range")
	rows, err := s.Query("t").Select("id", "val").Where("val", Between(0, 100)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols := rows.Columns()
	if len(cols) != 2 || cols[0] != "id" || cols[1] != "val" {
		t.Fatalf("Columns = %v", cols)
	}
	if !rows.Next() {
		t.Fatal("no rows")
	}
	if v, ok := rows.Col("val"); !ok || v < 0 || v >= 100 {
		t.Errorf("Col(val) = %d, %v", v, ok)
	}
	if _, err := rows.Column("g"); !errors.Is(err, ErrNotSelected) {
		t.Errorf("projected-away column = %v, want ErrNotSelected", err)
	}
	if _, err := rows.Column("nope"); !errors.Is(err, ErrUnknownColumn) {
		t.Errorf("unknown column = %v, want ErrUnknownColumn", err)
	}
	var buf [2]int64
	if n := rows.CopyRow(buf[:]); n != 2 {
		t.Errorf("CopyRow = %d", n)
	}
}
