package ssclient

import (
	"context"
	"fmt"

	"smoothscan"
)

// A Conn is a smoothscan.Engine: the same harness code that drives a
// *smoothscan.DB or *smoothscan.ShardedDB drives a remote server by
// swapping in a dialed Conn. Wire-specific capability (SetFetchRows,
// Broken, ServerStats, fault administration) stays on the concrete
// type, as does Summary — Engine code reads ExecStats instead, which
// every backend fills.
var (
	_ smoothscan.Engine = (*Conn)(nil)
	_ smoothscan.Cursor = (*Rows)(nil)
)

// connBuilder adapts *Query to smoothscan.Builder.
type connBuilder struct{ q *Query }

func (b connBuilder) Where(col string, p smoothscan.Pred) smoothscan.Builder {
	b.q.Where(col, p)
	return b
}
func (b connBuilder) Join(table, leftCol, rightCol string) smoothscan.Builder {
	b.q.Join(table, leftCol, rightCol)
	return b
}
func (b connBuilder) JoinWithOptions(table, leftCol, rightCol string, opts smoothscan.ScanOptions) smoothscan.Builder {
	b.q.JoinWithOptions(table, leftCol, rightCol, opts)
	return b
}
func (b connBuilder) Select(cols ...string) smoothscan.Builder { b.q.Select(cols...); return b }
func (b connBuilder) GroupBy(col string, aggs ...smoothscan.Agg) smoothscan.Builder {
	b.q.GroupBy(col, aggs...)
	return b
}
func (b connBuilder) OrderBy(col string) smoothscan.Builder { b.q.OrderBy(col); return b }
func (b connBuilder) Limit(n any) smoothscan.Builder        { b.q.Limit(n); return b }
func (b connBuilder) WithOptions(opts smoothscan.ScanOptions) smoothscan.Builder {
	b.q.WithOptions(opts)
	return b
}
func (b connBuilder) Run(ctx context.Context) (smoothscan.Cursor, error) {
	r, err := b.q.Run(ctx)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// stmtPrepared adapts *Stmt to smoothscan.PreparedQuery.
type stmtPrepared struct{ st *Stmt }

func (p stmtPrepared) Params() []string { return p.st.Params() }
func (p stmtPrepared) Run(ctx context.Context, b smoothscan.Bind) (smoothscan.Cursor, error) {
	r, err := p.st.Run(ctx, b)
	if err != nil {
		return nil, err
	}
	return r, nil
}
func (p stmtPrepared) Close() error { return p.st.Close() }

// Table implements smoothscan.Engine.
func (c *Conn) Table(name string) smoothscan.Builder { return connBuilder{q: c.Query(name)} }

// PrepareQuery implements smoothscan.Engine; the Builder must come
// from this Conn's Table.
func (c *Conn) PrepareQuery(b smoothscan.Builder) (smoothscan.PreparedQuery, error) {
	cb, ok := b.(connBuilder)
	if !ok || cb.q.c != c {
		return nil, fmt.Errorf("ssclient: PrepareQuery: builder %T was not created by this connection's Table", b)
	}
	st, err := c.Prepare(cb.q)
	if err != nil {
		return nil, err
	}
	return stmtPrepared{st: st}, nil
}
