package ssclient

import (
	"time"

	"smoothscan"
	"smoothscan/internal/client"
)

// Rows iterates a remote result stream. It mirrors the embedded
// smoothscan.Rows iterator (Next/Row/Col/Err/Close) over the wire's
// pull cursor: rows arrive in column-encoded batches, a fetch window
// at a time, so the server never runs unboundedly ahead of the
// consumer. The embedded transport stream contributes Columns, Next,
// Row, CopyRow, Col, Err, Summary and Close.
//
// A Rows is owned by a single goroutine, and its Conn can serve no
// other request until the stream is drained or closed. Close is safe
// at any point — mid-stream it cancels the server-side query (parallel
// scan workers exit promptly) — and safe after a server disconnect: a
// stream the server can no longer serve is simply over.
type Rows struct {
	*client.Rows
}

// ExecStats returns the execution's statistics in the engine's shape,
// populated once the stream has been fully drained (before that the
// server has not sent its summary and the zero value returns). The
// fields a remote execution cannot observe — operator and worker
// breakdowns, smooth-scan morph state — stay zero; I/O, row count,
// plan-cache reuse, retry and fault counters, and the degradation
// ladder all survive the wire.
func (r *Rows) ExecStats() smoothscan.ExecStats {
	sum, ok := r.Summary()
	if !ok {
		return smoothscan.ExecStats{}
	}
	return smoothscan.ExecStats{
		IO:           sum.IO,
		RowsReturned: sum.Rows,
		PlanCacheHit: sum.PlanCacheHit,
		Retries:      sum.Retries,
		FaultsSeen:   sum.FaultsSeen,
		Degraded:     sum.Degraded,
		ResultCache: smoothscan.ResultCacheExec{
			Hit:   sum.ResultCacheHit,
			Bytes: sum.ResultCacheBytes,
			Age:   time.Duration(sum.ResultCacheAgeNs),
		},
	}
}
