// Package ssclient is the remote client for the smoothscan wire
// protocol: the same prepare → bind → execute query surface the
// embedded engine exposes, spoken to a cmd/ssserver over TCP.
//
//	c, _ := ssclient.Dial(addr)
//	defer c.Close()
//	stmt, _ := c.Prepare(c.Query("t").
//		Where("val", ssclient.Between(ssclient.Param("lo"), ssclient.Param("hi"))))
//	rows, _ := stmt.Run(ctx, smoothscan.Bind{"lo": 10, "hi": 20})
//	for rows.Next() { use(rows.Row()) }
//	rows.Close()
//
// Error classes survive the wire: a remote error unwraps to the same
// typed sentinels the embedded engine returns, so errors.Is and
// smoothscan.IsTransientFault / IsFaultError give identical answers
// for remote and in-process executions. Admission-control rejects
// satisfy errors.Is(err, ssclient.ErrOverloaded).
//
// A Client owns one connection and runs one request/response exchange
// at a time; it is not safe for concurrent use — give each goroutine
// its own Client (connections are cheap; the server pools admission
// across all of them). Rows.Close and Stmt.Close are always safe to
// call, including after the server has disconnected or the client is
// closed: they release local state first and treat an unreachable
// server as already-closed rather than an error to propagate.
package ssclient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"smoothscan"
	"smoothscan/internal/wire"
)

// Re-exported wire sentinels, matchable with errors.Is against any
// error a remote execution returns.
var (
	// ErrOverloaded: the server shed this connection or query under
	// admission control. Back off and retry.
	ErrOverloaded = wire.ErrOverloaded
	// ErrStmtEvicted: the statement handle fell out of the session's
	// statement table; re-Prepare.
	ErrStmtEvicted = wire.ErrStmtEvicted
	// ErrSessionClosed: the server closed the session (idle timeout or
	// shutdown).
	ErrSessionClosed = wire.ErrSessionClosed
	// ErrConnLost marks a dead connection: the client can no longer
	// exchange frames and must be re-dialed.
	ErrConnLost = errors.New("ssclient: connection lost")
	// ErrBusy: a new request was issued while a Rows stream is open on
	// this client. Drain or Close it first.
	ErrBusy = errors.New("ssclient: a result stream is open")
)

// RemoteError is the typed error a server Error frame materialises
// into; its Unwrap preserves the engine's error class.
type RemoteError = wire.RemoteError

// ExecSummary is a remote execution's closing statistics — the wire
// projection of smoothscan.ExecStats.
type ExecSummary = wire.ExecSummary

// ServerStats is the server's counter snapshot (Client.ServerStats).
type ServerStats = wire.ServerStats

// FaultRule is one remote fault-injection rule (Client.SetFaultPolicy);
// it applies to every space of the server's device.
type FaultRule struct {
	Kind      smoothscan.FaultKind
	Rate      float64
	ExtraCost float64
}

// DefaultFetchRows is the per-Fetch row budget Rows uses unless
// Client.SetFetchRows overrides it.
const DefaultFetchRows = 4096

// handshakeTimeout bounds Dial's Hello/HelloOK exchange.
const handshakeTimeout = 10 * time.Second

// Client is one protocol session. Not safe for concurrent use.
type Client struct {
	conn      net.Conn
	mu        sync.Mutex
	err       error // sticky: once the connection failed, everything does
	closed    bool
	cur       *Rows
	fetchRows int
}

// Dial connects and performs the protocol handshake. A server at its
// connection limit answers with an overloaded Error frame, so the
// returned error satisfies errors.Is(err, ErrOverloaded) rather than
// hanging or surfacing a bare I/O failure.
func Dial(addr string) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, handshakeTimeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, fetchRows: DefaultFetchRows}
	conn.SetDeadline(time.Now().Add(handshakeTimeout))
	if err := wire.WriteFrame(conn, wire.MsgHello, wire.Hello{Magic: wire.Magic, Version: wire.Version}.Marshal()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	typ, payload, err := wire.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("%w: %v", ErrConnLost, err)
	}
	conn.SetDeadline(time.Time{})
	switch typ {
	case wire.MsgHelloOK:
		if _, err := wire.DecodeHelloOK(payload); err != nil {
			conn.Close()
			return nil, err
		}
		return c, nil
	case wire.MsgError:
		conn.Close()
		m, derr := wire.DecodeError(payload)
		if derr != nil {
			return nil, derr
		}
		return nil, m.Err()
	default:
		conn.Close()
		return nil, fmt.Errorf("%w: unexpected handshake frame %#02x", wire.ErrMalformed, typ)
	}
}

// SetFetchRows overrides the per-Fetch row budget of subsequent Rows
// (n <= 0 restores the default). Smaller windows trade throughput for
// finer cancellation granularity.
func (c *Client) SetFetchRows(n int) {
	if n <= 0 {
		n = DefaultFetchRows
	}
	c.fetchRows = n
}

// Broken reports whether the connection has failed; a broken client
// cannot recover and should be re-dialed.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// Close closes the connection. Idempotent, and safe whatever state the
// connection is in.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.cur != nil {
		c.cur.closed = true
		c.cur = nil
	}
	return c.conn.Close()
}

// broken records a connection-fatal error and returns it. Caller holds
// c.mu or has exclusive use.
func (c *Client) broken(err error) error {
	if c.err == nil {
		c.err = fmt.Errorf("%w: %v", ErrConnLost, err)
		c.conn.Close()
	}
	return c.err
}

// usable rejects requests on a dead, closed or busy client.
func (c *Client) usable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrConnLost
	}
	if c.err != nil {
		return c.err
	}
	if c.cur != nil && !c.cur.closed {
		return ErrBusy
	}
	return nil
}

// send writes one request frame.
func (c *Client) send(typ byte, payload []byte) error {
	if err := wire.WriteFrame(c.conn, typ, payload); err != nil {
		return c.broken(err)
	}
	return nil
}

// recv reads one response frame.
func (c *Client) recv() (byte, []byte, error) {
	typ, payload, err := wire.ReadFrame(c.conn)
	if err != nil {
		return 0, nil, c.broken(err)
	}
	return typ, payload, nil
}

// roundTrip sends one request and reads its single response frame,
// translating an Error frame into a typed error.
func (c *Client) roundTrip(reqTyp byte, payload []byte, wantTyp byte) ([]byte, error) {
	if err := c.send(reqTyp, payload); err != nil {
		return nil, err
	}
	typ, resp, err := c.recv()
	if err != nil {
		return nil, err
	}
	switch typ {
	case wantTyp:
		return resp, nil
	case wire.MsgError:
		m, derr := wire.DecodeError(resp)
		if derr != nil {
			return nil, c.broken(derr)
		}
		if m.Class == wire.ClassIdle {
			// A server-initiated close ends the session; no further
			// exchange can succeed on this connection.
			c.broken(m.Err())
		}
		return nil, m.Err()
	default:
		return nil, c.broken(fmt.Errorf("unexpected frame %#02x (wanted %#02x)", typ, wantTyp))
	}
}

// Prepare compiles the query into a server-side statement. Structural
// errors (unknown tables or columns, bad argument types) surface here,
// as with DB.Prepare.
func (c *Client) Prepare(q *Query) (*Stmt, error) {
	if q.err != nil {
		return nil, q.err
	}
	if err := c.usable(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(wire.MsgPrepare, wire.Prepare{Spec: q.spec}.Marshal(), wire.MsgPrepareOK)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodePrepareOK(resp)
	if err != nil {
		return nil, c.broken(err)
	}
	return &Stmt{c: c, id: m.StmtID, params: m.Params}, nil
}

// ServerStats fetches the server's counter snapshot.
func (c *Client) ServerStats() (ServerStats, error) {
	if err := c.usable(); err != nil {
		return ServerStats{}, err
	}
	resp, err := c.roundTrip(wire.MsgStats, nil, wire.MsgStatsReply)
	if err != nil {
		return ServerStats{}, err
	}
	st, err := wire.DecodeServerStats(resp)
	if err != nil {
		return ServerStats{}, c.broken(err)
	}
	return st, nil
}

// SetFaultPolicy attaches a deterministic fault-injection policy to
// the server's device (rules apply to every space), or detaches any
// policy when rules is empty. The server must run with fault
// administration enabled; otherwise a bad-request error returns.
func (c *Client) SetFaultPolicy(seed int64, rules ...FaultRule) error {
	if err := c.usable(); err != nil {
		return err
	}
	m := wire.FaultCtl{Seed: seed}
	for _, r := range rules {
		m.Rules = append(m.Rules, wire.FaultRuleSpec{
			Kind:      byte(r.Kind),
			Rate:      r.Rate,
			ExtraCost: int64(r.ExtraCost),
		})
	}
	_, err := c.roundTrip(wire.MsgFaultCtl, m.Marshal(), wire.MsgOK)
	return err
}

// ClearFaultPolicy detaches any fault-injection policy.
func (c *Client) ClearFaultPolicy() error { return c.SetFaultPolicy(0) }

// ColdCache evicts the server's buffer pool so a following
// measurement window starts from the same cold state an in-process
// run would — the remote analog of DB.ColdCache. It shares the fault
// administration gate; a server without it enabled answers with a
// bad-request error.
func (c *Client) ColdCache() error {
	if err := c.usable(); err != nil {
		return err
	}
	_, err := c.roundTrip(wire.MsgColdCache, nil, wire.MsgOK)
	return err
}

// Stmt is a remote prepared statement handle.
type Stmt struct {
	c      *Client
	id     uint32
	params []string
	closed bool
}

// Params returns the statement's parameter names in first-use order.
func (s *Stmt) Params() []string {
	return append([]string(nil), s.params...)
}

// Run binds the parameters and executes the statement, opening a
// result stream. One stream may be open per Client at a time.
func (s *Stmt) Run(ctx context.Context, b smoothscan.Bind) (*Rows, error) {
	if s.closed {
		return nil, fmt.Errorf("ssclient: Run on a closed Stmt")
	}
	m := wire.Execute{StmtID: s.id}
	for name, val := range b {
		m.Binds = append(m.Binds, wire.BindKV{Name: name, Val: val})
	}
	return s.c.openRows(ctx, wire.MsgExecute, m.Marshal())
}

// Close drops the server-side statement handle. It is idempotent and
// safe after a server disconnect: a handle that cannot be reached is
// gone by definition, so Close only reports errors from a live,
// misbehaving exchange.
func (s *Stmt) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.c.usable(); err != nil {
		// Busy, broken or closed: the handle dies with the session;
		// nothing to deliver, nothing to report.
		return nil
	}
	_, err := s.c.roundTrip(wire.MsgCloseStmt, wire.CloseStmt{StmtID: s.id}.Marshal(), wire.MsgOK)
	if errors.Is(err, ErrConnLost) || errors.Is(err, ErrSessionClosed) {
		return nil
	}
	return err
}

// openRows issues an Execute/Query request and materialises the
// ExecOK response into a Rows stream.
func (c *Client) openRows(ctx context.Context, reqTyp byte, payload []byte) (*Rows, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := c.usable(); err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(reqTyp, payload, wire.MsgExecOK)
	if err != nil {
		return nil, err
	}
	m, err := wire.DecodeExecOK(resp)
	if err != nil {
		return nil, c.broken(err)
	}
	r := &Rows{c: c, ctx: ctx, cols: m.Cols, fetchRows: c.fetchRows}
	c.mu.Lock()
	c.cur = r
	c.mu.Unlock()
	return r, nil
}
