// Package ssclient is the remote client for the smoothscan wire
// protocol: the same prepare → bind → execute query surface the
// embedded engine exposes, spoken to a cmd/ssserver over TCP.
//
//	c, _ := ssclient.Dial(addr)
//	defer c.Close()
//	stmt, _ := c.Prepare(c.Query("t").
//		Where("val", smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))))
//	rows, _ := stmt.Run(ctx, smoothscan.Bind{"lo": 10, "hi": 20})
//	for rows.Next() { use(rows.Row()) }
//	rows.Close()
//
// The query builder is the engine's own: Conn.Query composes a real
// smoothscan.Query (via smoothscan.NewQuery), so predicates,
// aggregates and Param placeholders are the root package's types —
// smoothscan.Between works identically at a local and a remote call
// site — and ssclient's Between/Param/Sum aliases exist only for
// backward compatibility. The transport itself lives in
// internal/client, shared with the engine's remote shard driver.
//
// Error classes survive the wire: a remote error unwraps to the same
// typed sentinels the embedded engine returns, so errors.Is and
// smoothscan.IsTransientFault / IsFaultError give identical answers
// for remote and in-process executions. Admission-control rejects
// satisfy errors.Is(err, ssclient.ErrOverloaded).
//
// A Conn owns one connection and runs one request/response exchange
// at a time; it is not safe for concurrent use — give each goroutine
// its own Conn (connections are cheap; the server pools admission
// across all of them). Rows.Close and Stmt.Close are always safe to
// call, including after the server has disconnected or the client is
// closed: they release local state first and treat an unreachable
// server as already-closed rather than an error to propagate.
package ssclient

import (
	"context"

	"smoothscan"
	"smoothscan/internal/client"
	"smoothscan/internal/qbridge"
	"smoothscan/internal/wire"
)

// Re-exported wire sentinels, matchable with errors.Is against any
// error a remote execution returns.
var (
	// ErrOverloaded: the server shed this connection or query under
	// admission control. Back off and retry.
	ErrOverloaded = wire.ErrOverloaded
	// ErrStmtEvicted: the statement handle fell out of the session's
	// statement table; re-Prepare.
	ErrStmtEvicted = wire.ErrStmtEvicted
	// ErrSessionClosed: the server closed the session (idle timeout or
	// shutdown).
	ErrSessionClosed = wire.ErrSessionClosed
	// ErrConnLost marks a dead connection: the client can no longer
	// exchange frames and must be re-dialed.
	ErrConnLost = client.ErrConnLost
	// ErrBusy: a new request was issued while a Rows stream is open on
	// this connection. Drain or Close it first.
	ErrBusy = client.ErrBusy
)

// RemoteError is the typed error a server Error frame materialises
// into; its Unwrap preserves the engine's error class.
type RemoteError = wire.RemoteError

// ExecSummary is a remote execution's closing statistics — the wire
// projection of smoothscan.ExecStats (Rows.ExecStats converts it
// back).
type ExecSummary = wire.ExecSummary

// ServerStats is the server's counter snapshot (Conn.ServerStats).
type ServerStats = wire.ServerStats

// FaultRule is one remote fault-injection rule (Conn.SetFaultPolicy);
// it applies to every space of the server's device.
type FaultRule struct {
	Kind      smoothscan.FaultKind
	Rate      float64
	ExtraCost float64
}

// DefaultFetchRows is the per-Fetch row budget Rows uses unless
// Conn.SetFetchRows overrides it.
const DefaultFetchRows = client.DefaultFetchRows

// Conn is one protocol session. Not safe for concurrent use. The
// embedded transport contributes Broken, Close, SetFetchRows,
// ServerStats, ColdCache and ClearFaultPolicy.
type Conn struct {
	*client.Conn
}

// Client is the historical name for Conn, kept as an alias so
// existing call sites compile unchanged.
type Client = Conn

// Dial connects and performs the protocol handshake. A server at its
// connection limit answers with an overloaded Error frame, so the
// returned error satisfies errors.Is(err, ErrOverloaded) rather than
// hanging or surfacing a bare I/O failure.
func Dial(addr string) (*Conn, error) {
	c, err := client.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &Conn{Conn: c}, nil
}

// Prepare compiles the query into a server-side statement. Structural
// errors (unknown tables or columns, bad argument types) surface here,
// as with DB.Prepare.
func (c *Conn) Prepare(q *Query) (*Stmt, error) {
	spec, err := qbridge.Spec(q.q)
	if err != nil {
		return nil, err
	}
	st, err := c.Conn.PrepareSpec(spec)
	if err != nil {
		return nil, err
	}
	return &Stmt{Stmt: st}, nil
}

// SetFaultPolicy attaches a deterministic fault-injection policy to
// the server's device (rules apply to every space), or detaches any
// policy when rules is empty. The server must run with fault
// administration enabled; otherwise a bad-request error returns.
func (c *Conn) SetFaultPolicy(seed int64, rules ...FaultRule) error {
	specs := make([]wire.FaultRuleSpec, len(rules))
	for i, r := range rules {
		specs[i] = wire.FaultRuleSpec{
			Kind:      byte(r.Kind),
			Rate:      r.Rate,
			ExtraCost: int64(r.ExtraCost),
		}
	}
	return c.Conn.SetFaultPolicy(seed, specs...)
}

// Stmt is a remote prepared statement handle. The embedded transport
// contributes Params and Close.
type Stmt struct {
	*client.Stmt
}

// Run binds the parameters and executes the statement, opening a
// result stream. One stream may be open per Conn at a time.
func (s *Stmt) Run(ctx context.Context, b smoothscan.Bind) (*Rows, error) {
	r, err := s.Stmt.Run(ctx, b)
	if err != nil {
		return nil, err
	}
	return &Rows{Rows: r}, nil
}
