package ssclient

import (
	"context"
	"fmt"
	"math"

	"smoothscan"
	"smoothscan/internal/wire"
)

// The remote query builder mirrors the smoothscan.Query surface —
// Where / Join / Select / GroupBy / OrderBy / Limit / WithOptions —
// but composes a wire QuerySpec instead of an in-process plan. All
// semantic validation (unknown tables and columns, ambiguous
// conjuncts) happens server-side at Prepare/Run, where the schema
// lives; the builder only records the first local mistake (a bad
// argument type, an empty parameter name) and reports it from
// Run/Prepare, the same error-channel contract as the embedded
// builder.

// Arg is one predicate or Limit argument: an integer literal or a
// Param placeholder.
type Arg struct {
	param string
	lit   int64
	err   error
}

// Param is a named placeholder usable anywhere a literal goes, exactly
// as with smoothscan.Param; a query containing parameters must be
// compiled with Client.Prepare.
func Param(name string) Arg {
	if name == "" {
		return Arg{err: fmt.Errorf("ssclient: empty parameter name")}
	}
	for _, r := range name {
		if !(r == '_' || r >= '0' && r <= '9' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z') {
			return Arg{err: fmt.Errorf("ssclient: parameter name %q: only letters, digits and underscores are allowed", name)}
		}
	}
	return Arg{param: name}
}

// asArg converts a constructor argument: an Arg passes through, any
// integer kind becomes a literal.
func asArg(v any) Arg {
	switch x := v.(type) {
	case Arg:
		return x
	case int:
		return Arg{lit: int64(x)}
	case int64:
		return Arg{lit: x}
	case int32:
		return Arg{lit: int64(x)}
	case int16:
		return Arg{lit: int64(x)}
	case int8:
		return Arg{lit: int64(x)}
	case uint8:
		return Arg{lit: int64(x)}
	case uint16:
		return Arg{lit: int64(x)}
	case uint32:
		return Arg{lit: int64(x)}
	case uint:
		if uint64(x) > math.MaxInt64 {
			return Arg{err: fmt.Errorf("%w: %d overflows int64", smoothscan.ErrArgType, x)}
		}
		return Arg{lit: int64(x)}
	case uint64:
		if x > math.MaxInt64 {
			return Arg{err: fmt.Errorf("%w: %d overflows int64", smoothscan.ErrArgType, x)}
		}
		return Arg{lit: int64(x)}
	default:
		return Arg{err: fmt.Errorf("%w: %T (want an integer or Param)", smoothscan.ErrArgType, v)}
	}
}

func (a Arg) spec() wire.ArgSpec { return wire.ArgSpec{Param: a.param, Lit: a.lit} }

// Pred is a predicate on one integer column.
type Pred struct {
	kind byte
	a, b Arg
	err  error
}

func pred(kind byte, a, b Arg) Pred {
	err := a.err
	if err == nil {
		err = b.err
	}
	return Pred{kind: kind, a: a, b: b, err: err}
}

// Between matches lo <= v < hi.
func Between(lo, hi any) Pred { return pred(wire.PredBetween, asArg(lo), asArg(hi)) }

// Eq matches v == x.
func Eq(x any) Pred { return pred(wire.PredEq, asArg(x), Arg{}) }

// Lt matches v < x.
func Lt(x any) Pred { return pred(wire.PredLt, asArg(x), Arg{}) }

// Le matches v <= x.
func Le(x any) Pred { return pred(wire.PredLe, asArg(x), Arg{}) }

// Gt matches v > x.
func Gt(x any) Pred { return pred(wire.PredGt, asArg(x), Arg{}) }

// Ge matches v >= x.
func Ge(x any) Pred { return pred(wire.PredGe, asArg(x), Arg{}) }

// Agg is an aggregate expression for Query.GroupBy.
type Agg struct {
	kind byte
	col  string
	as   string
}

// Sum aggregates the sum of col per group.
func Sum(col string) Agg { return Agg{kind: wire.AggSum, col: col} }

// Count counts the rows of each group.
func Count() Agg { return Agg{kind: wire.AggCount} }

// Min aggregates the minimum of col per group.
func Min(col string) Agg { return Agg{kind: wire.AggMin, col: col} }

// Max aggregates the maximum of col per group.
func Max(col string) Agg { return Agg{kind: wire.AggMax, col: col} }

// As renames the aggregate's output column.
func (a Agg) As(name string) Agg { a.as = name; return a }

// Query is a remote query under construction. Build one with
// Client.Query, chain the builder methods, then Run it (ad hoc) or
// Prepare it into a Stmt.
type Query struct {
	c    *Client
	spec wire.QuerySpec
	err  error
}

// Query starts a composable query over the named server-side table.
func (c *Client) Query(table string) *Query {
	return &Query{c: c, spec: wire.QuerySpec{Table: table}}
}

func (q *Query) fail(err error) *Query {
	if q.err == nil {
		q.err = err
	}
	return q
}

// Where adds a conjunctive predicate on a column.
func (q *Query) Where(col string, p Pred) *Query {
	if p.err != nil {
		return q.fail(fmt.Errorf("Where(%q): %w", col, p.err))
	}
	q.spec.Preds = append(q.spec.Preds, wire.PredSpec{Col: col, Kind: p.kind, A: p.a.spec(), B: p.b.spec()})
	return q
}

// Join adds an inner equi-join with another table (see
// smoothscan.Query.Join for the semantics).
func (q *Query) Join(table, leftCol, rightCol string) *Query {
	q.spec.Joins = append(q.spec.Joins, wire.JoinSpec{Table: table, LeftCol: leftCol, RightCol: rightCol})
	return q
}

// JoinWithOptions is Join with explicit ScanOptions for the joined
// table's access path.
func (q *Query) JoinWithOptions(table, leftCol, rightCol string, opts smoothscan.ScanOptions) *Query {
	q.spec.Joins = append(q.spec.Joins, wire.JoinSpec{
		Table: table, LeftCol: leftCol, RightCol: rightCol, Opts: optsSpec(opts)})
	return q
}

// Select projects the output onto the named columns, in order.
func (q *Query) Select(cols ...string) *Query {
	if q.spec.HasSel {
		return q.fail(fmt.Errorf("ssclient: Select set twice"))
	}
	if len(cols) == 0 {
		return q.fail(fmt.Errorf("ssclient: Select requires at least one column"))
	}
	q.spec.Select = append([]string(nil), cols...)
	q.spec.HasSel = true
	return q
}

// GroupBy groups rows by a column and computes the aggregates per
// group.
func (q *Query) GroupBy(col string, aggs ...Agg) *Query {
	if q.spec.HasAgg {
		return q.fail(fmt.Errorf("ssclient: GroupBy set twice"))
	}
	if len(aggs) == 0 {
		return q.fail(fmt.Errorf("ssclient: GroupBy requires at least one aggregate"))
	}
	q.spec.GroupCol = col
	for _, a := range aggs {
		q.spec.Aggs = append(q.spec.Aggs, wire.AggSpec{Kind: a.kind, Col: a.col, As: a.as})
	}
	q.spec.HasAgg = true
	return q
}

// OrderBy orders the output by the named column, ascending.
func (q *Query) OrderBy(col string) *Query {
	if q.spec.HasOrd {
		return q.fail(fmt.Errorf("ssclient: OrderBy set twice"))
	}
	q.spec.OrderCol = col
	q.spec.HasOrd = true
	return q
}

// Limit caps the number of output rows; it accepts an integer or a
// Param placeholder.
func (q *Query) Limit(n any) *Query {
	a := asArg(n)
	if a.err != nil {
		return q.fail(fmt.Errorf("Limit: %w", a.err))
	}
	if a.param == "" && a.lit < 0 {
		return q.fail(fmt.Errorf("ssclient: negative limit %d", a.lit))
	}
	q.spec.Limit = a.spec()
	q.spec.HasLim = true
	return q
}

// WithOptions applies ScanOptions to the driving table access. The
// options type is shared with the embedded engine, so a workload
// configuration moves between local and remote execution unchanged.
func (q *Query) WithOptions(opts smoothscan.ScanOptions) *Query {
	q.spec.Opts = optsSpec(opts)
	return q
}

// Run executes the query ad hoc (literals inline) and opens a result
// stream. Parameterized queries must go through Prepare.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	if q.err != nil {
		return nil, q.err
	}
	return q.c.openRows(ctx, wire.MsgQuery, wire.Query{Spec: q.spec}.Marshal())
}

func optsSpec(o smoothscan.ScanOptions) wire.OptsSpec {
	return wire.OptsSpec{
		Path:              byte(o.Path),
		Policy:            byte(o.Policy),
		Trigger:           byte(o.Trigger),
		Ordered:           o.Ordered,
		EstimatedRows:     o.EstimatedRows,
		SLABound:          o.SLABound,
		MaxRegionPages:    o.MaxRegionPages,
		ResultCacheBudget: o.ResultCacheBudget,
		Parallelism:       int32(o.Parallelism),
	}
}
