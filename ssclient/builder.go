package ssclient

import (
	"context"

	"smoothscan"
	"smoothscan/internal/qbridge"
)

// The remote query builder IS the engine's builder: Conn.Query wraps a
// detached smoothscan.Query and every method delegates to it, so the
// same Where / Join / Select / GroupBy / OrderBy / Limit / WithOptions
// call sites — with the same predicate, aggregate and Param types —
// compile against a *smoothscan.DB, a *smoothscan.ShardedDB or a
// *ssclient.Conn. At Run/Prepare the query serialises to a wire spec;
// all semantic validation (unknown tables and columns, ambiguous
// conjuncts) happens server-side, where the schema lives, while
// builder-level mistakes (bad argument types, Select set twice) are
// recorded by the engine builder and reported from Run/Prepare — the
// same error-channel contract as the embedded engine.

// Aliases for the engine's argument, predicate and aggregate types.
// New code can use the smoothscan package directly; these keep
// existing ssclient call sites compiling unchanged.
type (
	// Arg is one predicate or Limit argument: an integer literal or a
	// Param placeholder.
	Arg = smoothscan.Arg
	// Pred is a predicate on one integer column.
	Pred = smoothscan.Pred
	// Agg is an aggregate expression for Query.GroupBy.
	Agg = smoothscan.Agg
)

// Param is a named placeholder usable anywhere a literal goes, exactly
// as with smoothscan.Param; a query containing parameters must be
// compiled with Conn.Prepare.
func Param(name string) Arg { return smoothscan.Param(name) }

// Between matches lo <= v < hi.
func Between(lo, hi any) Pred { return smoothscan.Between(lo, hi) }

// Eq matches v == x.
func Eq(x any) Pred { return smoothscan.Eq(x) }

// Lt matches v < x.
func Lt(x any) Pred { return smoothscan.Lt(x) }

// Le matches v <= x.
func Le(x any) Pred { return smoothscan.Le(x) }

// Gt matches v > x.
func Gt(x any) Pred { return smoothscan.Gt(x) }

// Ge matches v >= x.
func Ge(x any) Pred { return smoothscan.Ge(x) }

// Sum aggregates the sum of col per group.
func Sum(col string) Agg { return smoothscan.Sum(col) }

// Count counts the rows of each group.
func Count() Agg { return smoothscan.Count() }

// Min aggregates the minimum of col per group.
func Min(col string) Agg { return smoothscan.Min(col) }

// Max aggregates the maximum of col per group.
func Max(col string) Agg { return smoothscan.Max(col) }

// Query is a remote query under construction. Build one with
// Conn.Query, chain the builder methods, then Run it (ad hoc) or
// Prepare it into a Stmt.
type Query struct {
	c *Conn
	q *smoothscan.Query
}

// Query starts a composable query over the named server-side table.
func (c *Conn) Query(table string) *Query {
	return &Query{c: c, q: smoothscan.NewQuery(table)}
}

// Where adds a conjunctive predicate on a column.
func (q *Query) Where(col string, p Pred) *Query {
	q.q.Where(col, p)
	return q
}

// Join adds an inner equi-join with another table (see
// smoothscan.Query.Join for the semantics).
func (q *Query) Join(table, leftCol, rightCol string) *Query {
	q.q.Join(table, leftCol, rightCol)
	return q
}

// JoinWithOptions is Join with explicit ScanOptions for the joined
// table's access path.
func (q *Query) JoinWithOptions(table, leftCol, rightCol string, opts smoothscan.ScanOptions) *Query {
	q.q.JoinWithOptions(table, leftCol, rightCol, opts)
	return q
}

// Select projects the output onto the named columns, in order.
func (q *Query) Select(cols ...string) *Query {
	q.q.Select(cols...)
	return q
}

// GroupBy groups rows by a column and computes the aggregates per
// group.
func (q *Query) GroupBy(col string, aggs ...Agg) *Query {
	q.q.GroupBy(col, aggs...)
	return q
}

// OrderBy orders the output by the named column, ascending.
func (q *Query) OrderBy(col string) *Query {
	q.q.OrderBy(col)
	return q
}

// Limit caps the number of output rows; it accepts an integer or a
// Param placeholder.
func (q *Query) Limit(n any) *Query {
	q.q.Limit(n)
	return q
}

// WithOptions applies ScanOptions to the driving table access. The
// options type is shared with the embedded engine, so a workload
// configuration moves between local and remote execution unchanged.
func (q *Query) WithOptions(opts smoothscan.ScanOptions) *Query {
	q.q.WithOptions(opts)
	return q
}

// Run executes the query ad hoc (literals inline) and opens a result
// stream. Parameterized queries must go through Prepare.
func (q *Query) Run(ctx context.Context) (*Rows, error) {
	spec, err := qbridge.Spec(q.q)
	if err != nil {
		return nil, err
	}
	r, err := q.c.Conn.RunSpec(ctx, spec)
	if err != nil {
		return nil, err
	}
	return &Rows{Rows: r}, nil
}
