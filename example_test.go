package smoothscan_test

import (
	"context"
	"fmt"

	"smoothscan"
)

// Example shows the minimal end-to-end flow: load, index, scan with
// the default (Smooth Scan) access path.
func Example() {
	db, err := smoothscan.Open(smoothscan.Options{})
	if err != nil {
		panic(err)
	}
	tb, err := db.CreateTable("t", "id", "val")
	if err != nil {
		panic(err)
	}
	for i := int64(0); i < 1000; i++ {
		if err := tb.Append(i, i%10); err != nil {
			panic(err)
		}
	}
	if err := tb.Finish(); err != nil {
		panic(err)
	}
	if err := db.CreateIndex("t", "val"); err != nil {
		panic(err)
	}

	rows, err := db.Scan("t", "val", 3, 5, smoothscan.ScanOptions{})
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	count := 0
	for rows.Next() {
		count++
	}
	if rows.Err() != nil {
		panic(rows.Err())
	}
	fmt.Println("matched:", count)
	// Output: matched: 200
}

// ExampleDB_Scan_orderedSmooth demonstrates index-key-ordered delivery
// through the Result Cache.
func ExampleDB_Scan_orderedSmooth() {
	db, _ := smoothscan.Open(smoothscan.Options{})
	tb, _ := db.CreateTable("t", "id", "val")
	for _, v := range []int64{5, 3, 9, 3, 7} {
		tb.Append(0, v)
	}
	tb.Finish()
	db.CreateIndex("t", "val")

	rows, _ := db.Scan("t", "val", 0, 10, smoothscan.ScanOptions{Ordered: true})
	defer rows.Close()
	for rows.Next() {
		v, _ := rows.Col("val")
		fmt.Print(v, " ")
	}
	fmt.Println()
	// Output: 3 3 5 7 9
}

// ExampleDB_Scan_accessPaths runs the same query under different
// access paths; the result is identical, the cost profile is not.
func ExampleDB_Scan_accessPaths() {
	db, _ := smoothscan.Open(smoothscan.Options{})
	tb, _ := db.CreateTable("t", "id", "val")
	for i := int64(0); i < 5000; i++ {
		tb.Append(i, i%100)
	}
	tb.Finish()
	db.CreateIndex("t", "val")

	for _, p := range []smoothscan.AccessPath{
		smoothscan.PathFull, smoothscan.PathIndex, smoothscan.PathSmooth,
	} {
		db.ColdCache()
		rows, _ := db.Scan("t", "val", 10, 20, smoothscan.ScanOptions{Path: p})
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		fmt.Printf("%s: %d rows\n", p, n)
	}
	// Output:
	// full: 500 rows
	// index: 500 rows
	// smooth: 500 rows
}

// ExampleDB_FullScanCost shows expressing an SLA bound in terms of the
// cost model, the paper's Section III-C strategy.
func ExampleDB_FullScanCost() {
	db, _ := smoothscan.Open(smoothscan.Options{})
	// Realistic 80-byte tuples: on very narrow tables the index is as
	// large as the heap and fixed seek costs dominate any SLA budget.
	tb, _ := db.CreateTable("t", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10")
	for i := int64(0); i < 50_000; i++ {
		tb.Append(i, (i*7919)%50_000, 0, 0, 0, 0, 0, 0, 0, 0)
	}
	tb.Finish()
	db.CreateIndex("t", "c2")

	fs, _ := db.FullScanCost("t")
	db.ResetStats()
	rows, err := db.Scan("t", "c2", 0, 50_000, smoothscan.ScanOptions{
		Trigger:  smoothscan.SLADriven,
		Policy:   smoothscan.Greedy,
		SLABound: 2 * fs,
	})
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	n := 0
	for rows.Next() {
		n++
	}
	fmt.Println("rows:", n, "within SLA:", db.Stats().IOTime <= 2*fs)
	// Output: rows: 50000 within SLA: true
}

// ExampleDB_Query composes a multi-predicate aggregation with the
// builder: the optimizer drives the scan by the indexed predicate and
// pushes the other conjunct into the page decode as a residual.
func ExampleDB_Query() {
	db, _ := smoothscan.Open(smoothscan.Options{})
	tb, _ := db.CreateTable("orders", "id", "amount", "items")
	for i := int64(0); i < 10_000; i++ {
		tb.Append(i, i%500, i%7)
	}
	tb.Finish()
	db.CreateIndex("orders", "amount")

	rows, err := db.Query("orders").
		Where("amount", smoothscan.Between(100, 104)).
		Where("items", smoothscan.Lt(3)).
		GroupBy("amount", smoothscan.Count(), smoothscan.Sum("items")).
		OrderBy("amount").
		Run(context.Background())
	if err != nil {
		panic(err)
	}
	defer rows.Close()
	for rows.Next() {
		amount, _ := rows.Col("amount")
		n, _ := rows.Col("count")
		fmt.Printf("amount %d: %d orders\n", amount, n)
	}
	// Output:
	// amount 100: 9 orders
	// amount 101: 8 orders
	// amount 102: 8 orders
	// amount 103: 8 orders
}

// ExampleQuery_Explain prints the compiled plan without executing the
// query (no simulated I/O is charged).
func ExampleQuery_Explain() {
	db, _ := smoothscan.Open(smoothscan.Options{})
	tb, _ := db.CreateTable("t", "id", "val", "tag")
	for i := int64(0); i < 5_000; i++ {
		tb.Append(i, i%100, i%9)
	}
	tb.Finish()
	db.CreateIndex("t", "val")

	plan, err := db.Query("t").
		Where("val", smoothscan.Between(10, 20)).
		Where("tag", smoothscan.Eq(3)).
		Select("id", "val").
		Limit(5).
		Explain()
	if err != nil {
		panic(err)
	}
	fmt.Print(plan)
	// Output:
	// Query(t) via smooth
	// └─ limit(5)                                       est≈5 rows
	//    └─ project(id, val)                            est≈556 rows
	//       └─ smooth-scan(t: 10<=val<20, policy=elastic, trigger=eager, residual: tag=3) est≈556 rows
}
