package smoothscan_test

// Remote-equivalence tests: the same engine, queried in-process and
// through cmd/ssserver's wire protocol, must produce identical
// results. The server here is handed the *same* DB instance the local
// queries run against, so any divergence is the wire layer's fault —
// encoding, batching, cursor paging or error mapping — and not a data
// generation artifact.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"testing"

	"smoothscan"
	"smoothscan/internal/loadgen"
	"smoothscan/internal/server"
	"smoothscan/ssclient"
)

// remoteFixture is one shared DB served both ways.
type remoteFixture struct {
	db   *smoothscan.DB
	srv  *server.Server
	addr string
}

func buildRemoteFixture(t *testing.T) *remoteFixture {
	t.Helper()
	db, err := loadgen.BuildDB(6000, 1500, 7, smoothscan.Options{PoolPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	// A dimension table keyed by the fact table's indexed column, so
	// the join grid has a matching row for every t.val.
	dt, err := db.CreateTable("d", "d_id", "d_w")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 1500; i++ {
		if err := dt.Append(i, i%7); err != nil {
			t.Fatal(err)
		}
	}
	if err := dt.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("d", "d_id"); err != nil {
		t.Fatal(err)
	}
	srv := server.New(db, server.Config{FaultAdmin: true})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return &remoteFixture{db: db, srv: srv, addr: srv.Addr().String()}
}

func (f *remoteFixture) dial(t *testing.T) *ssclient.Client {
	t.Helper()
	c, err := ssclient.Dial(f.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// drainCursor and collect are the single result path for every
// backend: the local DB, the remote Conn (and a ShardedDB, were one in
// play) all surface the uniform smoothscan.Cursor, so there is no
// per-backend drain code whose differences could mask a divergence.
func drainCursor(t *testing.T, cur smoothscan.Cursor, err error) [][]int64 {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	var out [][]int64
	for cur.Next() {
		out = append(out, cur.Row())
	}
	if cur.Err() != nil {
		t.Fatal(cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

func collect(t *testing.T, b smoothscan.Builder) [][]int64 {
	t.Helper()
	cur, err := b.Run(context.Background())
	return drainCursor(t, cur, err)
}

func sortRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// requireSameRows compares two result sets value for value. Ordered
// plans must match in sequence; unordered ones as multisets (parallel
// fan-in interleaving is legitimately nondeterministic on both sides
// of the wire).
func requireSameRows(t *testing.T, local, remote [][]int64, ordered bool) {
	t.Helper()
	if len(local) != len(remote) {
		t.Fatalf("row counts differ: local %d, remote %d", len(local), len(remote))
	}
	if !ordered {
		sortRows(local)
		sortRows(remote)
	}
	for i := range local {
		if len(local[i]) != len(remote[i]) {
			t.Fatalf("row %d: widths differ: local %d, remote %d", i, len(local[i]), len(remote[i]))
		}
		for j := range local[i] {
			if local[i][j] != remote[i][j] {
				t.Fatalf("row %d col %d: local %d, remote %d", i, j, local[i][j], remote[i][j])
			}
		}
	}
}

// TestRemoteEquivalenceGrid runs the access-path × parallelism ×
// join grid both ways and requires identical results.
func TestRemoteEquivalenceGrid(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)
	c.SetFetchRows(256) // several windows per query: paging is under test

	paths := []struct {
		name string
		path smoothscan.AccessPath
	}{
		{"smooth", smoothscan.PathSmooth},
		{"index", smoothscan.PathIndex},
		{"full", smoothscan.PathFull},
	}
	const lo, hi = 100, 400
	for _, p := range paths {
		for _, par := range []int{1, 4} {
			for _, join := range []bool{false, true} {
				name := fmt.Sprintf("%s/p%d/join=%v", p.name, par, join)
				t.Run(name, func(t *testing.T) {
					opts := smoothscan.ScanOptions{Path: p.path, Parallelism: par}
					// One query definition, two engines: the Engine
					// interface guarantees the builders are the same calls.
					build := func(e smoothscan.Engine) smoothscan.Builder {
						b := e.Table(loadgen.Table).
							Where(loadgen.IndexedCol, smoothscan.Between(lo, hi)).
							WithOptions(opts)
						if join {
							b = b.Join("d", loadgen.IndexedCol, "d_id")
						}
						return b
					}
					local := collect(t, build(f.db))
					remote := collect(t, build(c))
					if len(local) == 0 {
						t.Fatal("grid case matched no rows; fixture is broken")
					}
					requireSameRows(t, local, remote, false)
				})
			}
		}
	}
}

// TestRemoteEquivalenceOrdered pins the stronger sequence-identical
// property for ordered output, which is deterministic on both sides.
func TestRemoteEquivalenceOrdered(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)
	c.SetFetchRows(128)
	build := func(e smoothscan.Engine) smoothscan.Builder {
		return e.Table(loadgen.Table).
			Where(loadgen.IndexedCol, smoothscan.Between(200, 900)).
			WithOptions(smoothscan.ScanOptions{Ordered: true})
	}
	requireSameRows(t, collect(t, build(f.db)), collect(t, build(c)), true)
}

// TestRemoteEquivalenceShaped covers the rest of the builder surface —
// Select, GroupBy aggregates, OrderBy, Limit — through both paths.
func TestRemoteEquivalenceShaped(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)

	t.Run("select-order-limit", func(t *testing.T) {
		build := func(e smoothscan.Engine) smoothscan.Builder {
			return e.Table(loadgen.Table).
				Where(loadgen.IndexedCol, smoothscan.Ge(1200)).
				Select("id", loadgen.IndexedCol).
				OrderBy("id").
				Limit(37)
		}
		requireSameRows(t, collect(t, build(f.db)), collect(t, build(c)), true)
	})

	t.Run("groupby-aggregates", func(t *testing.T) {
		build := func(e smoothscan.Engine) smoothscan.Builder {
			return e.Table(loadgen.Table).
				Where(loadgen.IndexedCol, smoothscan.Lt(300)).
				Join("d", loadgen.IndexedCol, "d_id").
				GroupBy("d_w", smoothscan.Count().As("n"), smoothscan.Sum("p1").As("s"), smoothscan.Min("p2"), smoothscan.Max("p3")).
				OrderBy("d_w")
		}
		local := collect(t, build(f.db))
		remote := collect(t, build(c))
		if len(local) == 0 {
			t.Fatal("aggregate case produced no groups")
		}
		requireSameRows(t, local, remote, true)
	})
}

// TestRemotePreparedEquivalence binds the same parameterized template
// through DB.Prepare and Client.Prepare across several bind sets.
func TestRemotePreparedEquivalence(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)

	build := func(e smoothscan.Engine) smoothscan.Builder {
		return e.Table(loadgen.Table).
			Where(loadgen.IndexedCol, smoothscan.Between(smoothscan.Param("lo"), smoothscan.Param("hi"))).
			Limit(smoothscan.Param("n"))
	}
	lstmt, err := f.db.PrepareQuery(build(f.db))
	if err != nil {
		t.Fatal(err)
	}
	rstmt, err := c.PrepareQuery(build(c))
	if err != nil {
		t.Fatal(err)
	}
	lp, rp := lstmt.Params(), rstmt.Params()
	if len(lp) != len(rp) {
		t.Fatalf("parameter lists differ: local %v, remote %v", lp, rp)
	}
	for i := range lp {
		if lp[i] != rp[i] {
			t.Fatalf("parameter lists differ: local %v, remote %v", lp, rp)
		}
	}
	for _, b := range []smoothscan.Bind{
		{"lo": 0, "hi": 120, "n": 1000},
		{"lo": 700, "hi": 730, "n": 5},
		{"lo": 1400, "hi": 1500, "n": 1 << 30},
	} {
		lrows, lerr := lstmt.Run(context.Background(), b)
		local := drainCursor(t, lrows, lerr)
		rrows, rerr := rstmt.Run(context.Background(), b)
		remote := drainCursor(t, rrows, rerr)
		requireSameRows(t, local, remote, false)
	}
	if err := rstmt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := lstmt.Close(); err != nil {
		t.Fatal(err)
	}

	// A builder from one engine cannot be prepared by another.
	if _, err := f.db.PrepareQuery(build(c)); err == nil {
		t.Fatal("DB.PrepareQuery accepted a remote connection's builder")
	}
	if _, err := c.PrepareQuery(build(f.db)); err == nil {
		t.Fatal("Conn.PrepareQuery accepted a local DB's builder")
	}
}

// TestRemoteFaultPropagation injects faults via the admin frame and
// checks the typed error classes survive the wire: the same
// errors.Is/IsTransientFault answers a local run would give, never a
// generic I/O error.
func TestRemoteFaultPropagation(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)

	run := func() error {
		rows, err := c.Query(loadgen.Table).
			Where(loadgen.IndexedCol, ssclient.Between(0, 1500)).
			Run(context.Background())
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
		return err
	}

	// Permanent faults on every read: the engine cannot recover, and
	// the client must see the permanent class, not a wire error.
	if err := c.SetFaultPolicy(3, ssclient.FaultRule{Kind: smoothscan.FaultPermanent, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.ColdCache(); err != nil {
		t.Fatal(err)
	}
	err := run()
	if err == nil {
		t.Fatal("query under permanent faults succeeded")
	}
	if !errors.Is(err, smoothscan.ErrPermanentFault) {
		t.Fatalf("permanent fault class lost over the wire: %v", err)
	}
	if !smoothscan.IsFaultError(err) || smoothscan.IsTransientFault(err) {
		t.Fatalf("fault predicates wrong for %v", err)
	}
	if c.Broken() {
		t.Fatal("execution error broke the connection")
	}

	// Saturating transient faults exhaust the engine's bounded retry;
	// the client-visible class must be transient, the one retry loops
	// key on.
	if err := c.SetFaultPolicy(3, ssclient.FaultRule{Kind: smoothscan.FaultTransient, Rate: 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.ColdCache(); err != nil {
		t.Fatal(err)
	}
	err = run()
	if err == nil {
		t.Fatal("query under saturating transient faults succeeded")
	}
	if !smoothscan.IsTransientFault(err) {
		t.Fatalf("transient fault class lost over the wire: %v", err)
	}

	// Clearing the policy restores service on the same connection.
	if err := c.ClearFaultPolicy(); err != nil {
		t.Fatal(err)
	}
	if err := c.ColdCache(); err != nil {
		t.Fatal(err)
	}
	if err := run(); err != nil {
		t.Fatalf("query after clearing faults: %v", err)
	}
}

// TestRemoteRowsDoubleClose exercises the documented Close contracts
// on the live path: double Close of Rows mid-stream and after drain.
func TestRemoteRowsDoubleClose(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)
	c.SetFetchRows(64)

	rows, err := c.Query(loadgen.Table).
		Where(loadgen.IndexedCol, ssclient.Between(0, 1500)).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows: %v", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("mid-stream Close: %v", err)
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if rows.Next() {
		t.Fatal("Next advanced after Close")
	}

	// The connection is resynchronised; a drained stream closes clean
	// too, and its summary is available.
	rows2, err := c.Query(loadgen.Table).
		Where(loadgen.IndexedCol, ssclient.Between(0, 100)).
		Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for rows2.Next() {
		n++
	}
	if rows2.Err() != nil {
		t.Fatal(rows2.Err())
	}
	sum, ok := rows2.Summary()
	if !ok {
		t.Fatal("summary missing after full drain")
	}
	if sum.Rows != n {
		t.Fatalf("summary rows %d, want %d", sum.Rows, n)
	}
	if err := rows2.Close(); err != nil {
		t.Fatalf("Close after drain: %v", err)
	}
	if err := rows2.Close(); err != nil {
		t.Fatalf("double Close after drain: %v", err)
	}
}

// TestRemoteContextCancel cancels a client context mid-stream and
// checks the error surfaces as context.Canceled while the connection
// is written off (the stream cannot be resynchronised without the
// server's cancel acknowledgement, which the aborted context skips
// waiting for).
func TestRemoteContextCancel(t *testing.T) {
	f := buildRemoteFixture(t)
	c := f.dial(t)
	c.SetFetchRows(32)

	ctx, cancel := context.WithCancel(context.Background())
	rows, err := c.Query(loadgen.Table).
		Where(loadgen.IndexedCol, ssclient.Between(0, 1500)).
		WithOptions(smoothscan.ScanOptions{Parallelism: 4}).
		Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before cancel: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Fatalf("cancelled stream error: %v, want context.Canceled", rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatalf("Close after cancel: %v", err)
	}
}
