package smoothscan

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// joinFixture is a two-table join workload with the generated rows
// kept around for the reference oracle.
type joinFixture struct {
	db     *DB
	items  [][]int64 // i_id, i_order, i_date, i_qty
	orders [][]int64 // o_id, o_date, o_pri
}

// buildJoinDB loads an items (fact) and orders (dimension) pair:
// items.i_order is a foreign key into orders.o_id (dense 0..nOrders).
// Indexes: items.i_order, items.i_date, orders.o_id, orders.o_date.
func buildJoinDB(t testing.TB, nItems, nOrders int64) *joinFixture {
	t.Helper()
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f := &joinFixture{db: db}
	rng := rand.New(rand.NewSource(41))

	ob, err := db.CreateTable("orders", "o_id", "o_date", "o_pri")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < nOrders; i++ {
		row := []int64{i, rng.Int63n(1000), rng.Int63n(5)}
		f.orders = append(f.orders, row)
		if err := ob.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := ob.Finish(); err != nil {
		t.Fatal(err)
	}

	ib, err := db.CreateTable("items", "i_id", "i_order", "i_date", "i_qty")
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < nItems; i++ {
		row := []int64{i, rng.Int63n(nOrders), rng.Int63n(1000), 1 + rng.Int63n(50)}
		f.items = append(f.items, row)
		if err := ib.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := ib.Finish(); err != nil {
		t.Fatal(err)
	}
	for _, ix := range [][2]string{{"items", "i_order"}, {"items", "i_date"}, {"orders", "o_id"}, {"orders", "o_date"}} {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	db.ResetStats()
	return f
}

// referenceJoinRows is the per-tuple oracle: filter both sides, then
// nested-loop the equi-join, emitting left ++ right columns.
func referenceJoinRows(left, right [][]int64, lpred, rpred func([]int64) bool, lc, rc int) [][]int64 {
	var out [][]int64
	for _, l := range left {
		if !lpred(l) {
			continue
		}
		for _, r := range right {
			if !rpred(r) {
				continue
			}
			if l[lc] == r[rc] {
				row := append(append([]int64(nil), l...), r...)
				out = append(out, row)
			}
		}
	}
	return out
}

func sortJoined(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func collectRows(t testing.TB, rows *Rows) [][]int64 {
	t.Helper()
	defer rows.Close()
	var out [][]int64
	for rows.Next() {
		out = append(out, rows.Row())
	}
	if rows.Err() != nil {
		t.Fatal(rows.Err())
	}
	return out
}

func joinedEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestQueryJoinMatchesReference sweeps selectivity on both join inputs
// and access-path configurations of the probe side, comparing the
// batched join output to the per-tuple reference oracle.
func TestQueryJoinMatchesReference(t *testing.T) {
	f := buildJoinDB(t, 6_000, 800)
	grid := []int64{0, 10, 300, 1000} // i_date / o_date upper bounds over domain [0,1000)
	optsGrid := map[string]ScanOptions{
		"smooth":   {},
		"full":     {Path: PathFull},
		"index":    {Path: PathIndex},
		"parallel": {Parallelism: 4},
	}
	for _, li := range grid {
		for _, ri := range grid {
			lpred := func(r []int64) bool { return r[2] < li }
			rpred := func(r []int64) bool { return r[1] < ri }
			want := referenceJoinRows(f.items, f.orders, lpred, rpred, 1, 0)
			sortJoined(want)
			for name, opts := range optsGrid {
				got := collectRows(t, mustRun(t, f.db.Query("items").
					Join("orders", "i_order", "o_id").
					Where("i_date", Lt(li)).
					Where("o_date", Lt(ri)).
					WithOptions(opts)))
				sortJoined(got)
				if !joinedEqual(got, want) {
					t.Fatalf("li=%d ri=%d opts=%s: join = %d rows, oracle %d", li, ri, name, len(got), len(want))
				}
			}
		}
	}
}

// TestQueryJoinExplainHashBuildSide: the smaller estimated input lands
// on the hash build side, and the plan tree shows both inputs.
func TestQueryJoinExplainHashBuildSide(t *testing.T) {
	f := buildJoinDB(t, 6_000, 800)
	plan, err := f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("i_date", Lt(500)).
		Explain()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tables) != 2 || plan.Tables[0] != "items" || plan.Tables[1] != "orders" {
		t.Errorf("Tables = %v", plan.Tables)
	}
	root := plan.Root
	if root.Name != "hash-join" {
		t.Fatalf("root = %s\n%s", root.Name, plan)
	}
	if len(root.Children) != 2 {
		t.Fatalf("join has %d children", len(root.Children))
	}
	if !strings.Contains(root.Detail, "build=orders") {
		t.Errorf("expected orders (smaller) as build side: %q", root.Detail)
	}
	if !strings.Contains(plan.String(), "⋈") {
		t.Errorf("join header missing:\n%s", plan)
	}
}

// TestQueryJoinMergeWhenBothOrdered: when both inputs arrive ordered
// by their join columns (index scans on them), the planner picks the
// merge join, and its result matches the hash join's.
func TestQueryJoinMergeWhenBothOrdered(t *testing.T) {
	f := buildJoinDB(t, 4_000, 600)
	q := func() *Query {
		return f.db.Query("items").
			JoinWithOptions("orders", "i_order", "o_id", ScanOptions{Path: PathIndex}).
			Where("i_order", Between(0, 600)).
			WithOptions(ScanOptions{Path: PathIndex})
	}
	plan, err := q().Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan.Root.Name != "merge-join" {
		t.Fatalf("expected merge-join:\n%s", plan)
	}
	got := collectRows(t, mustRun(t, q()))
	want := referenceJoinRows(f.items, f.orders,
		func(r []int64) bool { return r[1] >= 0 && r[1] < 600 },
		func([]int64) bool { return true }, 1, 0)
	sortJoined(got)
	sortJoined(want)
	if !joinedEqual(got, want) {
		t.Fatalf("merge join = %d rows, oracle %d", len(got), len(want))
	}

	// The ordered smooth scan variant is merge-eligible too.
	q2 := f.db.Query("items").
		JoinWithOptions("orders", "i_order", "o_id", ScanOptions{Ordered: true}).
		Where("i_order", Between(0, 600)).
		WithOptions(ScanOptions{Ordered: true})
	plan2, err := q2.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Root.Name != "merge-join" {
		t.Fatalf("ordered smooth inputs should merge-join:\n%s", plan2)
	}
}

// TestQueryJoinSelectGroupOrder: the relational tail (Select over
// joined columns incl. the renamed collision-free schema, GroupBy,
// OrderBy, Limit) composes over a join.
func TestQueryJoinSelectGroupOrder(t *testing.T) {
	f := buildJoinDB(t, 5_000, 500)
	rows := mustRun(t, f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("i_date", Lt(400)).
		Select("o_pri", "i_qty").
		GroupBy("o_pri", Count(), Sum("i_qty")).
		OrderBy("o_pri"))
	got := collectRows(t, rows)

	// Oracle aggregation.
	type agg struct{ count, sum int64 }
	ref := map[int64]*agg{}
	for _, l := range f.items {
		if l[2] >= 400 {
			continue
		}
		o := f.orders[l[1]]
		a := ref[o[2]]
		if a == nil {
			a = &agg{}
			ref[o[2]] = a
		}
		a.count++
		a.sum += l[3]
	}
	if len(got) != len(ref) {
		t.Fatalf("%d groups, want %d", len(got), len(ref))
	}
	for _, row := range got {
		a := ref[row[0]]
		if a == nil || a.count != row[1] || a.sum != row[2] {
			t.Errorf("group %d = %v, want %+v", row[0], row, a)
		}
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i][0] < got[j][0] }) {
		t.Error("groups not ordered by key")
	}
}

// TestQueryJoinEmptyAndContradiction: a contradictory predicate on
// either side short-circuits the whole join with zero device reads;
// disjoint key ranges produce an empty (but executed) result.
func TestQueryJoinEmptyAndContradiction(t *testing.T) {
	f := buildJoinDB(t, 2_000, 300)
	f.db.ResetStats()
	before := f.db.Stats()
	rows := mustRun(t, f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("o_date", Lt(10)).
		Where("o_date", Ge(20)))
	if got := collectRows(t, rows); len(got) != 0 {
		t.Errorf("contradictory join returned %d rows", len(got))
	}
	if d := f.db.Stats().Sub(before); d.PagesRead != 0 {
		t.Errorf("contradictory join read %d pages", d.PagesRead)
	}

	rows = mustRun(t, f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("o_id", Ge(1_000_000)))
	if got := collectRows(t, rows); len(got) != 0 {
		t.Errorf("disjoint join returned %d rows", len(got))
	}
}

// TestQueryJoinExecStats: the join's build/probe counters and build-IO
// split surface through Rows.ExecStats.
func TestQueryJoinExecStats(t *testing.T) {
	f := buildJoinDB(t, 4_000, 500)
	rows := mustRun(t, f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("i_date", Lt(500)))
	got := collectRows(t, rows)
	st := rows.ExecStats()
	if len(st.Joins) != 1 {
		t.Fatalf("ExecStats.Joins = %d entries", len(st.Joins))
	}
	j := st.Joins[0]
	if j.Algo != "hash" {
		t.Errorf("algo = %q", j.Algo)
	}
	if j.RightRows != int64(len(f.orders)) {
		t.Errorf("build (right) rows = %d, want %d", j.RightRows, len(f.orders))
	}
	if j.OutputRows != int64(len(got)) {
		t.Errorf("output rows = %d, want %d", j.OutputRows, len(got))
	}
	if j.BuildKeys != int64(len(f.orders)) {
		t.Errorf("build keys = %d, want %d (o_id unique)", j.BuildKeys, len(f.orders))
	}
	if j.BuildIO.PagesRead == 0 {
		t.Error("build IO delta empty — expected the orders scan to read pages")
	}
	if st.IO.PagesRead < j.BuildIO.PagesRead {
		t.Errorf("total IO %d < build IO %d", st.IO.PagesRead, j.BuildIO.PagesRead)
	}
	var sawJoinOp bool
	for _, op := range st.Operators {
		if op.Name == "hash-join" {
			sawJoinOp = true
			if op.Rows != int64(len(got)) {
				t.Errorf("hash-join counter = %d rows, want %d", op.Rows, len(got))
			}
		}
	}
	if !sawJoinOp {
		t.Errorf("no hash-join operator counter: %+v", st.Operators)
	}
}

// TestQueryJoinCancellationParallelProbe: cancelling a join whose
// probe side is a parallel scan releases the worker goroutines
// promptly, mid-probe.
func TestQueryJoinCancellationParallelProbe(t *testing.T) {
	f := buildJoinDB(t, 30_000, 400)
	runtime.GC()
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rows, err := f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Where("i_date", Lt(1000)).
		WithOptions(ScanOptions{Parallelism: 4}).
		Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("no rows before cancel: %v", rows.Err())
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > base {
		t.Errorf("%d goroutines still alive after cancel (baseline %d)", got, base)
	}
	for rows.Next() {
	}
	if !errors.Is(rows.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", rows.Err())
	}
	if err := rows.Close(); err != nil && !errors.Is(err, context.Canceled) {
		t.Errorf("Close() = %v", err)
	}
}

// TestQueryJoinPreCancelledBuild: a context cancelled before Run stops
// the (blocking) hash build before it starts.
func TestQueryJoinPreCancelledBuild(t *testing.T) {
	f := buildJoinDB(t, 2_000, 300)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := f.db.Query("items").Join("orders", "i_order", "o_id").Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled ctx = %v", err)
	}
}

// TestQueryJoinThreeTables: a left-deep two-stage join chain.
func TestQueryJoinThreeTables(t *testing.T) {
	f := buildJoinDB(t, 3_000, 400)
	// Third table: priority labels (o_pri -> weight).
	pb, err := f.db.CreateTable("prio", "p_pri", "p_weight")
	if err != nil {
		t.Fatal(err)
	}
	var prio [][]int64
	for p := int64(0); p < 5; p++ {
		row := []int64{p, 100 * (p + 1)}
		prio = append(prio, row)
		if err := pb.Append(row...); err != nil {
			t.Fatal(err)
		}
	}
	if err := pb.Finish(); err != nil {
		t.Fatal(err)
	}

	got := collectRows(t, mustRun(t, f.db.Query("items").
		Join("orders", "i_order", "o_id").
		Join("prio", "o_pri", "p_pri").
		Where("i_date", Lt(200))))

	stage1 := referenceJoinRows(f.items, f.orders,
		func(r []int64) bool { return r[2] < 200 },
		func([]int64) bool { return true }, 1, 0)
	want := referenceJoinRows(stage1, prio,
		func([]int64) bool { return true },
		func([]int64) bool { return true }, 6, 0) // o_pri is col 4+2
	sortJoined(got)
	sortJoined(want)
	if !joinedEqual(got, want) {
		t.Fatalf("3-table join = %d rows, oracle %d", len(got), len(want))
	}
}

// TestQueryJoinErrors covers the builder-level misuse paths.
func TestQueryJoinErrors(t *testing.T) {
	f := buildJoinDB(t, 1_000, 200)
	cases := []struct {
		name string
		q    *Query
		want error
	}{
		{"unknown join table", f.db.Query("items").Join("nope", "i_order", "o_id"), ErrNoTable},
		{"unknown left col", f.db.Query("items").Join("orders", "bogus", "o_id"), ErrUnknownColumn},
		{"unknown right col", f.db.Query("items").Join("orders", "i_order", "bogus"), ErrUnknownColumn},
		{"unknown where col", f.db.Query("items").Join("orders", "i_order", "o_id").Where("bogus", Eq(1)), ErrUnknownColumn},
	}
	for _, c := range cases {
		if _, err := c.q.Explain(); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}
