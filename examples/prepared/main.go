// Prepared statements: compile a parameterized query once with
// DB.Prepare, then execute it many times with different Bind sets.
// The structural work — name resolution, join shape, projection —
// happens once at Prepare; every Run re-decides only the
// estimate-sensitive choices from the statistics of the moment. The
// same Stmt therefore flips its driving index between two bind sets:
// a narrow type window drives by the type index, a narrow timestamp
// window drives by the timestamp index, with the losing conjunct
// pushed down as a residual each time.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{})
	if err != nil {
		return err
	}

	// Events: a wide timestamp domain and a narrow type domain, both
	// indexed, with statistics so the bind phase can compare the
	// conjuncts' selectivities.
	tb, err := db.CreateTable("events", "id", "ts", "type", "payload")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	for i := int64(0); i < 200_000; i++ {
		if err := tb.Append(i, rng.Int63n(1_000_000), rng.Int63n(100), rng.Int63n(1000)); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	for _, col := range []string{"ts", "type"} {
		if err := db.CreateIndex("events", col); err != nil {
			return err
		}
	}
	if err := db.Analyze("events", "ts", "type"); err != nil {
		return err
	}

	// One statement, four parameters. Param placeholders go anywhere a
	// literal goes — predicate bounds here; Limit works too.
	stmt, err := db.Prepare(db.Query("events").
		Where("ts", smoothscan.Between(smoothscan.Param("ts_lo"), smoothscan.Param("ts_hi"))).
		Where("type", smoothscan.Between(smoothscan.Param("ty_lo"), smoothscan.Param("ty_hi"))))
	if err != nil {
		return err
	}
	fmt.Printf("prepared with parameters %v\n\n", stmt.Params())

	show := func(title string, b smoothscan.Bind) error {
		plan, err := stmt.Explain(b)
		if err != nil {
			return err
		}
		fmt.Printf("-- %s\n%s", title, plan)
		rows, err := stmt.Run(context.Background(), b)
		if err != nil {
			return err
		}
		n := 0
		for rows.Next() {
			n++
		}
		if err := rows.Err(); err != nil {
			rows.Close()
			return err
		}
		st := rows.ExecStats()
		if err := rows.Close(); err != nil {
			return err
		}
		fmt.Printf("   -> %d rows, plan reused: %v\n\n", n, st.PlanCacheHit)
		return nil
	}

	// Bind set 1: wide ts window, single type value — the type index
	// drives, ts becomes the residual.
	if err := show("narrow type (type index drives)", smoothscan.Bind{
		"ts_lo": 100_000, "ts_hi": 900_000, "ty_lo": 42, "ty_hi": 43,
	}); err != nil {
		return err
	}

	// Bind set 2: narrow ts window, wide type range — the SAME
	// statement now drives by the ts index.
	if err := show("narrow ts (ts index drives)", smoothscan.Bind{
		"ts_lo": 500_000, "ts_hi": 505_000, "ty_lo": 10, "ty_hi": 90,
	}); err != nil {
		return err
	}

	// Ad-hoc queries share the machinery transparently: same canonical
	// shape -> same cached template, visible in the DB-wide counters.
	for i := 0; i < 3; i++ {
		rows, err := db.Query("events").Where("ts", smoothscan.Lt(1_000+int64(i))).Run(context.Background())
		if err != nil {
			return err
		}
		for rows.Next() {
		}
		rows.Close()
	}
	cs := db.PlanCacheStats()
	fmt.Printf("plan cache: %d hits, %d misses, %d entries\n", cs.Hits, cs.Misses, cs.Entries)
	return nil
}
