// Skewed analytics: the paper's Section VI-D scenario. A sensor table
// whose error events cluster at the start (a bad deployment week)
// followed by rare scattered errors. One execution strategy cannot
// serve both regions; the Elastic policy morphs two ways — expanding
// through the dense head, shrinking through the sparse tail — while
// the Selectivity-Increase ratchet over-reads the tail dramatically.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 512})
	if err != nil {
		return err
	}

	// readings(id, status, 8 payload columns): the first 20,000 rows
	// are errors (status 0) — the bad deployment week, physically
	// clustered at the start of the heap — then one error in 10,000.
	const n = 200_000
	tb, err := db.CreateTable("readings",
		"id", "status", "v1", "v2", "v3", "v4", "v5", "v6", "v7", "v8")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	for i := int64(0); i < n; i++ {
		status := int64(1 + rng.Int63n(999)) // healthy codes 1..999
		if i < 20_000 || i%10_000 == 0 {
			status = 0 // error
		}
		if err := tb.Append(i, status,
			rng.Int63n(1_000_000), 0, 0, 0, 0, 0, 0, 0); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("readings", "status"); err != nil {
		return err
	}
	pages, _ := db.NumPages("readings")
	fmt.Printf("%d rows on %d pages; errors: dense head (10%%) + sparse tail\n\n", int64(n), pages)

	for _, policy := range []struct {
		name string
		p    smoothscan.Policy
	}{
		{"SelectivityIncrease (ratchet)", smoothscan.SelectivityIncrease},
		{"Elastic (two-way morphing)", smoothscan.Elastic},
	} {
		db.ColdCache()
		db.ResetStats()
		rows, err := db.Scan("readings", "status", 0, 1, smoothscan.ScanOptions{Policy: policy.p})
		if err != nil {
			return err
		}
		count := 0
		for rows.Next() {
			count++
		}
		if rows.Err() != nil {
			return rows.Err()
		}
		st := db.Stats()
		ss, _ := rows.SmoothStats()
		fmt.Printf("%-32s %5d errors  time=%8.1f  pages-fetched=%6d  expansions=%d shrinks=%d\n",
			policy.name, count, st.Time(), ss.PagesFetched, ss.Expansions, ss.Shrinks)
		rows.Close()
	}

	fmt.Println("\nthe ratchet keeps its huge morphing region after the dense head and")
	fmt.Println("drags most of the table in; Elastic shrinks back and touches a fraction.")
	return nil
}
