// Multi-table joins through the Query builder: a fact table joined to
// a dimension table, with per-table predicates pushed beneath the
// join into each side's access path. The example prints the Explain
// join tree (build/probe sides, per-input paths and estimates), runs
// the query, and reads the join's build/probe counters and the
// build-phase I/O split out of Rows.ExecStats.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))

	// Dimension: 10,000 orders with a date and a priority.
	const numOrders = 10_000
	ob, err := db.CreateTable("orders", "o_id", "o_date", "o_pri")
	if err != nil {
		return err
	}
	for i := int64(0); i < numOrders; i++ {
		if err := ob.Append(i, rng.Int63n(2_000), rng.Int63n(5)); err != nil {
			return err
		}
	}
	if err := ob.Finish(); err != nil {
		return err
	}

	// Fact: 200,000 line items, each referencing an order.
	ib, err := db.CreateTable("items", "i_id", "i_order", "i_date", "i_qty")
	if err != nil {
		return err
	}
	for i := int64(0); i < 200_000; i++ {
		if err := ib.Append(i, rng.Int63n(numOrders), rng.Int63n(2_000), 1+rng.Int63n(50)); err != nil {
			return err
		}
	}
	if err := ib.Finish(); err != nil {
		return err
	}
	for _, ix := range [][2]string{{"items", "i_date"}, {"orders", "o_date"}, {"items", "i_order"}, {"orders", "o_id"}} {
		if err := db.CreateIndex(ix[0], ix[1]); err != nil {
			return err
		}
	}

	// Recent items joined to early orders, quantities per priority.
	// Each conjunct is pushed beneath the join into its own table's
	// access path: i_date drives the items scan, o_date the orders
	// scan feeding the hash build.
	query := func() *smoothscan.Query {
		return db.Query("items").
			Join("orders", "i_order", "o_id").
			Where("i_date", smoothscan.Lt(200)).
			Where("o_date", smoothscan.Lt(1_000)).
			Select("o_pri", "i_qty").
			GroupBy("o_pri", smoothscan.Count(), smoothscan.Sum("i_qty"))
	}

	plan, err := query().Explain()
	if err != nil {
		return err
	}
	fmt.Printf("plan:\n%s\n", plan)

	rows, err := query().Run(context.Background())
	if err != nil {
		return err
	}
	defer rows.Close()
	fmt.Println("o_pri  count  sum_qty")
	for rows.Next() {
		r := rows.Row()
		fmt.Printf("%5d  %5d  %7d\n", r[0], r[1], r[2])
	}
	if err := rows.Err(); err != nil {
		return err
	}
	if err := rows.Close(); err != nil {
		return err
	}

	st := rows.ExecStats()
	for _, j := range st.Joins {
		buildRows, probeRows := j.RightRows, j.LeftRows
		if j.BuildLeft {
			buildRows, probeRows = j.LeftRows, j.RightRows
		}
		fmt.Printf("\n%s join: build %d rows (%d keys, %.0f cost units of I/O), probe %d rows, joined %d\n",
			j.Algo, buildRows, j.BuildKeys, j.BuildIO.Time(), probeRows, j.OutputRows)
	}
	fmt.Printf("total simulated I/O+CPU: %.0f cost units over %d device reads\n",
		st.IO.Time(), st.IO.PagesRead)
	fmt.Println("\nconclusion: one builder chain plans both access paths, pushes each",
		"\npredicate beneath the join, and the probe side still morphs adaptively.")
	return nil
}
