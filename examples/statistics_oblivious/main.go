// Statistics-oblivious execution: the paper's core claim. Yesterday,
// tenant 7 had a hundred log events, so the plan cache holds an index
// scan for "events of tenant 7". Overnight a misbehaving client made
// tenant 7 responsible for 70% of the table. The cached index plan
// collapses; a freshly optimized plan would be fine — but only after
// someone re-runs ANALYZE and invalidates the plan. Smooth Scan needs
// neither: it is the same operator in both worlds and lands near the
// optimum in each.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 512})
	if err != nil {
		return err
	}

	// Today's data: 70% of rows belong to tenant 7 (heavy skew).
	const n = 120_000
	tb, err := db.CreateTable("logs",
		"seq", "tenant", "p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(11))
	for i := int64(0); i < n; i++ {
		tenant := int64(7)
		if rng.Int63n(100) < 30 {
			tenant = rng.Int63n(10_000)
		}
		if err := tb.Append(i, tenant, rng.Int63n(1_000_000), 0, 0, 0, 0, 0, 0, 0); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("logs", "tenant"); err != nil {
		return err
	}

	query := func(label string, opts smoothscan.ScanOptions) (float64, error) {
		db.ColdCache()
		db.ResetStats()
		rows, err := db.Scan("logs", "tenant", 7, 8, opts)
		if err != nil {
			return 0, err
		}
		count := 0
		for rows.Next() {
			count++
		}
		if rows.Err() != nil {
			return 0, rows.Err()
		}
		st := db.Stats()
		fmt.Printf("%-38s %6d rows  time=%9.1f\n", label, count, st.Time())
		return st.Time(), rows.Close()
	}

	fmt.Println("query: all events of tenant 7 (truly ~70% of the table today)")
	fmt.Println()
	stale, err := query("yesterday's cached plan (index scan)", smoothscan.ScanOptions{Path: smoothscan.PathIndex})
	if err != nil {
		return err
	}
	smooth, err := query("smooth scan (no statistics, no cache)", smoothscan.ScanOptions{})
	if err != nil {
		return err
	}
	if err := db.Analyze("logs", "tenant"); err != nil {
		return err
	}
	fresh, err := query("re-optimized plan (full scan)", smoothscan.ScanOptions{Path: smoothscan.PathFull})
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Printf("the stale plan cost %.0fx the optimum; smooth scan, with zero knowledge,\n", stale/fresh)
	fmt.Printf("stayed within %.1fx of it — robustness without statistics.\n", smooth/fresh)
	return nil
}
