// SLA guard: Section III-C's SLA-driven trigger. A dashboard query
// must finish within a budget (here: 2.5 full scans' worth of I/O)
// no matter what the selectivity turns out to be. The scan starts as
// a cheap index look-up and, at the cost-model-computed point where a
// worst-case completion would endanger the SLA, morphs into Smooth
// Scan behaviour — bounding the damage a wrong cardinality estimate
// can do.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 512})
	if err != nil {
		return err
	}
	const n = 150_000
	tb, err := db.CreateTable("metrics", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(3))
	for i := int64(0); i < n; i++ {
		if err := tb.Append(i, rng.Int63n(100_000), 0, 0, 0, 0, 0, 0, 0, 0); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("metrics", "c2"); err != nil {
		return err
	}

	fullScan, err := db.FullScanCost("metrics")
	if err != nil {
		return err
	}
	sla := 2.5 * fullScan
	fmt.Printf("full scan costs %.0f units; SLA budget = %.0f units\n\n", fullScan, sla)

	// The dashboard believes the filter is selective — but today every
	// row matches (selectivity 100%), the paper's nightmare scenario
	// for a plain index scan.
	for _, variant := range []struct {
		label string
		opts  smoothscan.ScanOptions
	}{
		{"plain index scan", smoothscan.ScanOptions{Path: smoothscan.PathIndex}},
		{"SLA-guarded smooth scan", smoothscan.ScanOptions{
			Policy:   smoothscan.Greedy, // converge hard once triggered
			Trigger:  smoothscan.SLADriven,
			SLABound: sla,
		}},
	} {
		db.ColdCache()
		db.ResetStats()
		rows, err := db.Scan("metrics", "c2", 0, 100_000, variant.opts)
		if err != nil {
			return err
		}
		count := 0
		for rows.Next() {
			count++
		}
		if rows.Err() != nil {
			return rows.Err()
		}
		st := db.Stats()
		verdict := "within SLA"
		if st.IOTime > sla {
			verdict = fmt.Sprintf("SLA VIOLATED by %.1fx", st.IOTime/sla)
		}
		fmt.Printf("%-26s %d rows, I/O=%9.0f units  -> %s\n", variant.label, count, st.IOTime, verdict)
		if ss, ok := rows.SmoothStats(); ok {
			fmt.Printf("%-26s morphing triggered after %d tuples (cost-model decision)\n", "", ss.TriggeredAt)
		}
		rows.Close()
	}
	return nil
}
