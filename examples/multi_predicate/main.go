// Multi-predicate queries: the optimizer picks which conjunct drives
// the scan. Two indexed columns with very different selectivities show
// the driving-index choice flipping as the predicates change — and the
// losing conjunct turning into a residual predicate evaluated inside
// the page decode, so rows failing it are never materialised.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	db, err := smoothscan.Open(smoothscan.Options{})
	if err != nil {
		return err
	}

	// Events: a wide timestamp domain and a narrow type domain, both
	// indexed. 200,000 rows.
	tb, err := db.CreateTable("events", "id", "ts", "type", "payload")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(7))
	for i := int64(0); i < 200_000; i++ {
		if err := tb.Append(i, rng.Int63n(1_000_000), rng.Int63n(100), rng.Int63n(1000)); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	for _, col := range []string{"ts", "type"} {
		if err := db.CreateIndex("events", col); err != nil {
			return err
		}
	}
	// Statistics let the optimizer compare the conjuncts' true
	// selectivities (without Analyze it falls back to uniformity
	// assumptions — the paper's recipe for misestimation).
	if err := db.Analyze("events", "ts", "type"); err != nil {
		return err
	}

	explain := func(title string, q *smoothscan.Query) error {
		plan, err := q.Explain()
		if err != nil {
			return err
		}
		fmt.Printf("-- %s\n%s\n", title, plan)
		return nil
	}

	// A narrow timestamp window dominates: ts drives, type is residual.
	if err := explain("narrow ts window, broad type set",
		db.Query("events").
			Where("ts", smoothscan.Between(500_000, 505_000)).
			Where("type", smoothscan.Ge(10))); err != nil {
		return err
	}

	// Flip the widths: now the type equality is far more selective, so
	// the optimizer flips the driving index and ts becomes residual.
	if err := explain("broad ts window, single type",
		db.Query("events").
			Where("ts", smoothscan.Between(100_000, 900_000)).
			Where("type", smoothscan.Eq(42))); err != nil {
		return err
	}

	// Run the flipped query and show the unified stats.
	rows, err := db.Query("events").
		Where("ts", smoothscan.Between(100_000, 900_000)).
		Where("type", smoothscan.Eq(42)).
		GroupBy("type", smoothscan.Count(), smoothscan.Sum("payload")).
		Run(context.Background())
	if err != nil {
		return err
	}
	defer rows.Close()
	for rows.Next() {
		typ, _ := rows.Col("type")
		n, _ := rows.Col("count")
		sum, _ := rows.Col("sum_payload")
		fmt.Printf("type %d: %d events, payload sum %d\n", typ, n, sum)
	}
	if rows.Err() != nil {
		return rows.Err()
	}
	if err := rows.Close(); err != nil {
		return err
	}
	st := rows.ExecStats()
	fmt.Printf("scan produced %d rows for the aggregate; device: %d pages read, %.1f cost units\n",
		st.Operators[0].Rows, st.IO.PagesRead, st.IO.Time())
	return nil
}
