// Quickstart: load a table, build a secondary index, and run composable
// queries with the Smooth Scan access path — no statistics required.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	// A database on a simulated HDD (random I/O 10x slower than
	// sequential) with a 256-page buffer pool.
	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 256})
	if err != nil {
		return err
	}

	// Orders: (id, amount_cents, items). 50,000 rows, amounts uniform.
	tb, err := db.CreateTable("orders", "id", "amount", "items")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2024))
	for i := int64(0); i < 50_000; i++ {
		if err := tb.Append(i, rng.Int63n(10_000_00), 1+rng.Int63n(8)); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("orders", "amount"); err != nil {
		return err
	}

	// Query: orders between 100.00 and 150.00 with few items — ranges
	// whose cardinality an optimizer must guess. Smooth Scan does not
	// care: it adapts while running. The builder composes the pipeline;
	// the second predicate rides along as a residual evaluated inside
	// the page decode.
	q := db.Query("orders").
		Where("amount", smoothscan.Between(100_00, 150_00)).
		Where("items", smoothscan.Lt(4)).
		Select("id", "amount")

	// Explain compiles the query without touching the device.
	plan, err := q.Explain()
	if err != nil {
		return err
	}
	fmt.Print(plan)

	rows, err := q.Run(context.Background())
	if err != nil {
		return err
	}
	defer rows.Close()
	var count, total int64
	for rows.Next() {
		amount, _ := rows.Col("amount")
		total += amount
		count++
	}
	if rows.Err() != nil {
		return rows.Err()
	}
	if err := rows.Close(); err != nil {
		return err
	}

	fmt.Printf("matched %d orders, total %d.%02d\n", count, total/100, total%100)

	// ExecStats unifies the query's observability: device I/O delta,
	// Smooth Scan morphing counters, per-operator row counts.
	st := rows.ExecStats()
	fmt.Printf("simulated cost: %.1f units (%.1f I/O + %.1f CPU), %d pages read\n",
		st.IO.Time(), st.IO.IOTime, st.IO.CPUTime, st.IO.PagesRead)
	if st.HasSmooth {
		fmt.Printf("smooth scan: fetched %d heap pages, morphing accuracy %.0f%%, peak region %d pages\n",
			st.Smooth.PagesFetched, 100*st.Smooth.MorphingAccuracy(), st.Smooth.PeakRegionPages)
	}
	for _, op := range st.Operators {
		fmt.Printf("operator %-12s %6d rows in %d batches\n", op.Name, op.Rows, op.Batches)
	}
	return nil
}
