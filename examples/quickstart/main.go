// Quickstart: load a table, build a secondary index, and run range
// queries with the Smooth Scan access path — no statistics required.
package main

import (
	"fmt"
	"math/rand"
	"os"

	"smoothscan"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

func run() error {
	// A database on a simulated HDD (random I/O 10x slower than
	// sequential) with a 256-page buffer pool.
	db, err := smoothscan.Open(smoothscan.Options{Disk: smoothscan.HDD, PoolPages: 256})
	if err != nil {
		return err
	}

	// Orders: (id, amount_cents). 50,000 rows, amounts uniform.
	tb, err := db.CreateTable("orders", "id", "amount")
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(2024))
	for i := int64(0); i < 50_000; i++ {
		if err := tb.Append(i, rng.Int63n(10_000_00)); err != nil {
			return err
		}
	}
	if err := tb.Finish(); err != nil {
		return err
	}
	if err := db.CreateIndex("orders", "amount"); err != nil {
		return err
	}

	// Query: orders between 100.00 and 150.00 — the kind of range
	// whose cardinality an optimizer must guess. Smooth Scan does not
	// care: it adapts while running.
	db.ResetStats()
	rows, err := db.Scan("orders", "amount", 100_00, 150_00, smoothscan.ScanOptions{
		// Defaults: PathSmooth, Elastic policy, Eager trigger.
	})
	if err != nil {
		return err
	}
	var count int64
	var total int64
	for rows.Next() {
		amount, _ := rows.Col("amount")
		total += amount
		count++
	}
	if rows.Err() != nil {
		return rows.Err()
	}
	defer rows.Close()

	fmt.Printf("matched %d orders, total %d.%02d\n", count, total/100, total%100)

	st := db.Stats()
	fmt.Printf("simulated cost: %.1f units (%.1f I/O + %.1f CPU), %d pages read\n",
		st.Time(), st.IOTime, st.CPUTime, st.PagesRead)

	if ss, ok := rows.SmoothStats(); ok {
		fmt.Printf("smooth scan: fetched %d heap pages, morphing accuracy %.0f%%, peak region %d pages\n",
			ss.PagesFetched, 100*ss.MorphingAccuracy(), ss.PeakRegionPages)
	}
	return nil
}
