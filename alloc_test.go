package smoothscan

// Allocation-regression tests for the batched execution pipeline. The
// contract of the tentpole batching work: moving a tuple through the
// batched scan path costs (amortised) no allocation. These tests pin
// that down with testing.AllocsPerRun so a regression fails CI rather
// than silently eroding throughput.

import (
	"testing"

	"smoothscan/internal/bufferpool"
	"smoothscan/internal/core"
	"smoothscan/internal/disk"
	"smoothscan/internal/exec"
	"smoothscan/internal/heap"
	"smoothscan/internal/tuple"
	"smoothscan/internal/workload"
)

// TestBatchedScanAllocsPerTuple drives a full batched Smooth Scan at
// 100% selectivity (the paper's worst case and the benchmark's
// configuration) and asserts the whole run — operator construction,
// buffer-pool refill, region morphing, batch delivery — stays at or
// under 0.2 allocations per produced tuple.
func TestBatchedScanAllocsPerTuple(t *testing.T) {
	const numRows = 20_000
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: numRows, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, int(tab.File.NumPages()/10)+64)
	pred := tab.PredForSelectivity(1)
	batch := tuple.NewBatchFor(tab.File.Schema(), exec.DefaultBatchSize)

	scan := func() int64 {
		pool.Reset()
		dev.ResetStats()
		ss, err := core.NewSmoothScan(tab.File, pool, tab.Index, pred, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if err := ss.Open(); err != nil {
			t.Fatal(err)
		}
		var n int64
		for {
			k, err := ss.NextBatch(batch)
			if err != nil {
				t.Fatal(err)
			}
			if k == 0 {
				break
			}
			n += int64(k)
		}
		ss.Close()
		return n
	}
	if got := scan(); got != numRows {
		t.Fatalf("scan produced %d tuples, want %d", got, numRows)
	}
	allocs := testing.AllocsPerRun(5, func() { scan() })
	perTuple := allocs / numRows
	t.Logf("batched scan: %.0f allocs/run, %.5f allocs/tuple", allocs, perTuple)
	if perTuple > 0.2 {
		t.Errorf("batched scan allocates %.3f per tuple, budget is 0.2", perTuple)
	}
}

// TestBatchDecodeAllocFree pins the innermost decode loop at exactly
// zero allocations once the batch is warm.
func TestBatchDecodeAllocFree(t *testing.T) {
	dev := disk.NewDevice(disk.HDD)
	tab, err := workload.BuildMicro(dev, workload.MicroConfig{NumRows: 2_000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool := bufferpool.New(dev, int(tab.File.NumPages())+8)
	pages, err := tab.File.GetRun(pool, 0, tab.File.NumPages(), nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := tuple.NewGrowableBatch(tab.File.Schema().NumCols())
	decodeAll := func() {
		batch.Reset()
		for _, page := range pages {
			tab.File.DecodeBatch(page, 0, heap.PageTupleCount(page), batch)
		}
	}
	decodeAll() // warm the growable batch
	if allocs := testing.AllocsPerRun(10, decodeAll); allocs != 0 {
		t.Errorf("page decode allocated %.1f times per run, want 0", allocs)
	}
}
