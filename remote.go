package smoothscan

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"smoothscan/internal/client"
	"smoothscan/internal/tuple"
	"smoothscan/internal/wire"
)

// Placement pins one shard to the network address of the ssserver
// instance that owns its rows (boot the node with
// `ssserver -shard-id i -shard-count n` so it loads exactly that
// slice). The placements passed to OpenShardedRemote are in shard
// order: placements[i] serves shard i of every table's Partitioning.
type Placement struct {
	// Addr is the shard node's address, "host:port".
	Addr string
}

// Tunables of the remote shard driver's connection handling.
const (
	// remoteDialAttempts bounds the dials tried before a shard is
	// declared unavailable.
	remoteDialAttempts = 3
	// remoteDialBackoff is the pause after a failed dial; it doubles
	// per attempt (10ms, 20ms).
	remoteDialBackoff = 10 * time.Millisecond
	// remotePoolCap bounds the idle connections a shard driver keeps.
	remotePoolCap = 8
)

// OpenShardedRemote opens a sharded database whose shards live in
// remote ssserver processes. The returned *ShardedDB serves the exact
// query surface of an in-process one — Query / Prepare / Explain,
// scatter-gather with pruning, per-shard ExecStats — but every shard's
// slice executes on its node and streams back over the wire.
//
// parts maps each sharded table to its Partitioning across the
// placement set (the client-side placement map: routing and pruning
// knowledge lives with the coordinator, data lives with the nodes).
// Each node's table catalog is fetched at open time and mirrored into
// a schema-only planning DB (opts configures those mirrors), so the
// coordinator compiles, prunes and explains exactly as it would
// locally; the mirrors hold no rows, so cost estimates that read table
// sizes are degenerate — of the engine's planning decisions only the
// broadcast-side pick reads them, and either pick returns the same
// rows (the gather is unordered for joins).
//
// A dead node surfaces as ErrShardUnavailable — at open time after
// bounded dial retries, or mid-query when its stream dies and
// reconnection is exhausted. Close the returned database to release
// the per-shard connection pools.
func OpenShardedRemote(placements []Placement, parts map[string]Partitioning, opts Options) (*ShardedDB, error) {
	if len(placements) < 1 {
		return nil, fmt.Errorf("smoothscan: no shard placements")
	}
	for i, p := range placements {
		if p.Addr == "" {
			return nil, fmt.Errorf("smoothscan: placement %d has no address", i)
		}
	}
	for table, p := range parts {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("smoothscan: partitioning of %q: %w", table, err)
		}
		if p.N != len(placements) {
			return nil, fmt.Errorf("smoothscan: partitioning of %q covers %d shards, %d placed", table, p.N, len(placements))
		}
	}
	s := &ShardedDB{remote: true, parts: map[string]Partitioning{}}
	s.initResultCache(opts)
	for t, p := range parts {
		s.parts[t] = p
	}
	ok := false
	defer func() {
		if !ok {
			_ = s.Close()
		}
	}()
	for i, p := range placements {
		d := &remoteDriver{shard: i, addr: p.Addr}
		s.drivers = append(s.drivers, d)
		c, err := d.dial()
		if err != nil {
			return nil, err
		}
		tables, err := c.Catalog()
		if err != nil {
			d.discard(c)
			return nil, fmt.Errorf("smoothscan: shard %d (%s) catalog: %w", i, p.Addr, err)
		}
		d.release(c)
		db, err := catalogMirror(opts, tables)
		if err != nil {
			return nil, fmt.Errorf("smoothscan: shard %d (%s) catalog: %w", i, p.Addr, err)
		}
		d.rows = make(map[string]int64, len(tables))
		for _, t := range tables {
			d.rows[t.Name] = t.Rows
		}
		s.shards = append(s.shards, db)
		for table, part := range parts {
			tab, err := db.table(table)
			if err != nil {
				return nil, fmt.Errorf("smoothscan: shard %d (%s) has no table %q", i, p.Addr, table)
			}
			if tab.file.Schema().ColIndex(part.Column) < 0 {
				return nil, fmt.Errorf("smoothscan: shard %d (%s): table %q has no partition column %q", i, p.Addr, table, part.Column)
			}
		}
	}
	ok = true
	return s, nil
}

// catalogMirror builds the schema-only planning DB for one node: its
// tables and indexes, zero rows.
func catalogMirror(opts Options, tables []wire.TableSpec) (*DB, error) {
	db, err := Open(opts)
	if err != nil {
		return nil, err
	}
	for _, t := range tables {
		tb, err := db.CreateTable(t.Name, t.Cols...)
		if err != nil {
			return nil, err
		}
		if err := tb.Finish(); err != nil {
			return nil, err
		}
		for _, col := range t.Indexed {
			if err := db.CreateIndex(t.Name, col); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// remoteDriver executes one shard's slices on a remote ssserver. It
// keeps a small pool of idle protocol connections — each in-flight
// per-shard stream owns one exclusively (a wire session runs one
// exchange at a time), so a scatter touching the shard k ways uses k
// connections. Dead connections are discarded and re-dialed with
// bounded retry; when the node stays unreachable the error wraps
// ErrShardUnavailable (and the underlying transport error, so
// errors.Is sees both).
type remoteDriver struct {
	shard int
	addr  string
	// rows is the node's per-table row count, snapshotted from its
	// catalog at open time (ShardRows serves it; the mirrors are empty).
	rows map[string]int64

	mu     sync.Mutex
	idle   []*client.Conn
	closed bool
}

func (d *remoteDriver) describe() string { return "remote " + d.addr }
func (d *remoteDriver) address() string  { return d.addr }

// acquire hands out an idle connection or dials a fresh one.
func (d *remoteDriver) acquire() (*client.Conn, error) {
	d.mu.Lock()
	for len(d.idle) > 0 {
		c := d.idle[len(d.idle)-1]
		d.idle = d.idle[:len(d.idle)-1]
		if c.Broken() {
			_ = c.Close()
			continue
		}
		d.mu.Unlock()
		return c, nil
	}
	closed := d.closed
	d.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("%w: shard %d (%s): database closed", ErrShardUnavailable, d.shard, d.addr)
	}
	return d.dial()
}

// dial connects with bounded retry and backoff; exhaustion wraps
// ErrShardUnavailable around the last transport error.
func (d *remoteDriver) dial() (*client.Conn, error) {
	var lastErr error
	for attempt := 0; attempt < remoteDialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(remoteDialBackoff << (attempt - 1))
		}
		c, err := client.Dial(d.addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("%w: shard %d (%s): %w", ErrShardUnavailable, d.shard, d.addr, lastErr)
}

// release returns a connection to the idle pool; broken connections
// and pool overflow are closed instead.
func (d *remoteDriver) release(c *client.Conn) {
	if c == nil {
		return
	}
	if c.Broken() {
		_ = c.Close()
		return
	}
	d.mu.Lock()
	if d.closed || len(d.idle) >= remotePoolCap {
		d.mu.Unlock()
		_ = c.Close()
		return
	}
	d.idle = append(d.idle, c)
	d.mu.Unlock()
}

// discard closes a connection without pooling it.
func (d *remoteDriver) discard(c *client.Conn) {
	if c != nil {
		_ = c.Close()
	}
}

// wrapErr classifies an execution error: transport-level failures
// (connection lost, session closed under it) become
// ErrShardUnavailable with the shard identified; everything else —
// typed engine errors shipped in Error frames, context cancellation —
// passes through untouched so errors.Is parity with in-process
// execution holds.
func (d *remoteDriver) wrapErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, client.ErrConnLost) || errors.Is(err, wire.ErrSessionClosed) {
		return fmt.Errorf("%w: shard %d (%s): %w", ErrShardUnavailable, d.shard, d.addr, err)
	}
	return err
}

func (d *remoteDriver) run(ctx context.Context, q *Query) (shardCursor, error) {
	spec, err := q.wireSpec()
	if err != nil {
		return nil, err
	}
	for attempt := 0; ; attempt++ {
		c, err := d.acquire()
		if err != nil {
			return nil, err
		}
		rows, err := c.RunSpec(ctx, spec)
		if err == nil {
			return newRemoteCursor(d, c, rows), nil
		}
		d.discard(c)
		// A pooled connection may have died idle; retry once fresh.
		if attempt == 0 && errors.Is(err, client.ErrConnLost) {
			continue
		}
		return nil, d.wrapErr(err)
	}
}

func (d *remoteDriver) prepare(q *Query) (shardStmt, error) {
	// The local statement — prepared against the shard's schema-only
	// mirror — carries the coordinator-side half: parameter names for
	// bind filtering and checkBind, and Explain. Remote handles are
	// prepared lazily, one per connection actually used.
	local, err := q.db.Prepare(q)
	if err != nil {
		return nil, err
	}
	spec, err := q.wireSpec()
	if err != nil {
		return nil, err
	}
	return &remoteStmt{drv: d, local: local, spec: spec, handles: map[*client.Conn]*client.Stmt{}}, nil
}

func (d *remoteDriver) close() error {
	d.mu.Lock()
	idle := d.idle
	d.idle = nil
	d.closed = true
	d.mu.Unlock()
	var first error
	for _, c := range idle {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// coldCache drops the node's buffer-pool contents (the remote
// equivalent of DB.ColdCache), for harnesses that measure cold runs.
func (d *remoteDriver) coldCache() error {
	c, err := d.acquire()
	if err != nil {
		return err
	}
	err = c.ColdCache()
	d.release(c)
	return d.wrapErr(err)
}

// serverStats fetches the node's server counters (ssload uses the
// device-sim-cost delta for per-shard balance reporting).
func (d *remoteDriver) serverStats() (wire.ServerStats, error) {
	c, err := d.acquire()
	if err != nil {
		return wire.ServerStats{}, err
	}
	st, err := c.ServerStats()
	d.release(c)
	return st, d.wrapErr(err)
}

// remoteCursor streams one shard's slice from its node, adapting the
// wire cursor to the shardCursor protocol. The connection is owned for
// the stream's lifetime and returned to the driver pool on close.
type remoteCursor struct {
	drv     *remoteDriver
	conn    *client.Conn
	rows    *client.Rows
	scratch []int64
	rowBuf  tuple.Row
	closed  bool
}

func newRemoteCursor(d *remoteDriver, c *client.Conn, rows *client.Rows) *remoteCursor {
	w := len(rows.Columns())
	return &remoteCursor{drv: d, conn: c, rows: rows, scratch: make([]int64, w), rowBuf: make(tuple.Row, w)}
}

func (rc *remoteCursor) fill(b *tuple.Batch) (int, error) {
	b.Reset()
	for !b.Full() && rc.rows.Next() {
		slot := b.AppendSlotRaw()
		rc.rows.CopyRow(rc.scratch)
		for i, v := range rc.scratch {
			slot.SetInt(i, v)
		}
	}
	if n := b.Len(); n > 0 {
		return n, nil
	}
	return 0, rc.drv.wrapErr(rc.rows.Err())
}

func (rc *remoteCursor) next() (tuple.Row, bool, error) {
	if !rc.rows.Next() {
		return nil, false, rc.drv.wrapErr(rc.rows.Err())
	}
	rc.rows.CopyRow(rc.scratch)
	for i, v := range rc.scratch {
		rc.rowBuf.SetInt(i, v)
	}
	return rc.rowBuf, true, nil
}

func (rc *remoteCursor) execStats() (ExecStats, bool) {
	sum, ok := rc.rows.Summary()
	if !ok {
		return ExecStats{}, false
	}
	return ExecStats{
		IO:           sum.IO,
		RowsReturned: sum.Rows,
		PlanCacheHit: sum.PlanCacheHit,
		Retries:      sum.Retries,
		FaultsSeen:   sum.FaultsSeen,
		Degraded:     sum.Degraded,
		ResultCache: ResultCacheExec{
			Hit:   sum.ResultCacheHit,
			Bytes: sum.ResultCacheBytes,
			Age:   time.Duration(sum.ResultCacheAgeNs),
		},
	}, true
}

// ioStats: the node's summary is the authority for the shard's I/O
// delta; until it arrives (stream not drained) there is nothing to
// report.
func (rc *remoteCursor) ioStats() (IOStats, bool) {
	sum, ok := rc.rows.Summary()
	if !ok {
		return IOStats{}, false
	}
	return sum.IO, true
}

func (rc *remoteCursor) close() error {
	if rc.closed {
		return nil
	}
	rc.closed = true
	err := rc.rows.Close()
	rc.drv.release(rc.conn)
	return rc.drv.wrapErr(err)
}

// remoteStmt is one shard's prepared statement against a remote node:
// a local statement on the schema-only mirror (parameters, bind
// filtering, Explain) plus lazily-prepared server-side handles, one
// per connection the statement has actually run on. An evicted handle
// (the session's statement table is bounded) is re-prepared
// transparently.
type remoteStmt struct {
	drv   *remoteDriver
	local *Stmt
	spec  wire.QuerySpec

	mu      sync.Mutex
	handles map[*client.Conn]*client.Stmt
}

func (s *remoteStmt) handle(c *client.Conn) (*client.Stmt, error) {
	s.mu.Lock()
	h := s.handles[c]
	s.mu.Unlock()
	if h != nil {
		return h, nil
	}
	h, err := c.PrepareSpec(s.spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.handles[c] = h
	s.mu.Unlock()
	return h, nil
}

func (s *remoteStmt) dropHandle(c *client.Conn) {
	s.mu.Lock()
	delete(s.handles, c)
	s.mu.Unlock()
}

func (s *remoteStmt) run(ctx context.Context, b Bind) (shardCursor, error) {
	bind := filterBind(s.local, b)
	for attempt := 0; ; attempt++ {
		c, err := s.drv.acquire()
		if err != nil {
			return nil, err
		}
		h, err := s.handle(c)
		if err == nil {
			var rows *client.Rows
			rows, err = h.Run(ctx, bind)
			if errors.Is(err, wire.ErrStmtEvicted) {
				// The session LRU-evicted the handle; re-prepare on this
				// connection and retry once.
				s.dropHandle(c)
				if h, err = s.handle(c); err == nil {
					rows, err = h.Run(ctx, bind)
				}
			}
			if err == nil {
				return newRemoteCursor(s.drv, c, rows), nil
			}
		}
		s.dropHandle(c)
		s.drv.discard(c)
		// A pooled connection may have died idle; retry once fresh.
		if attempt == 0 && errors.Is(err, client.ErrConnLost) {
			continue
		}
		return nil, s.drv.wrapErr(err)
	}
}

func (s *remoteStmt) explain(b Bind) (*Plan, error) {
	return s.local.Explain(filterBind(s.local, b))
}

// close drops the handle cache and closes the local statement. No wire
// traffic: the server's per-session statement table is bounded (LRU)
// and handles die with their sessions, so eager remote closes would
// only race pooled connections for no reclaim worth having.
func (s *remoteStmt) close() error {
	s.mu.Lock()
	s.handles = map[*client.Conn]*client.Stmt{}
	s.mu.Unlock()
	return s.local.Close()
}
